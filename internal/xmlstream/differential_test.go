package xmlstream_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xmlstream"
)

// The differential scanner harness: every corpus document is replayed
// through the seed (byte-at-a-time) engine and the zero-copy engine at every
// reader chunk size 1..64, and through the parallel chunk scanner at a
// battery of adversarial split choices. The fast paths must be byte-for-byte
// indistinguishable from the seed engine: identical event sequences
// (including interned symbols for the serial engines), identical per-event
// InputOffset accounting, identical error classes (ErrTruncated,
// ErrTokenTooLarge, ErrTooDeep, ErrDuplicateAttr) and identical
// ErrorOffset values. This file is the contract the ingest rewrite ships
// under; see DESIGN.md §15.

// diffDoc is one corpus entry.
type diffDoc struct {
	name string
	data []byte
	opts []xmlstream.ScannerOption
}

// handwrittenCorpus covers syntax and error-fidelity edges: every construct
// kind, every error class, and the scanner's documented quirks (whitespace
// before the '>' of a self-closing tag, entity pass-through, CDATA text
// coalescing, prolog/epilog skipping).
func handwrittenCorpus() []diffDoc {
	tiny := xmlstream.WithLimits(xmlstream.Limits{MaxTokenBytes: 8})
	shallow := xmlstream.WithLimits(xmlstream.Limits{MaxDepth: 3})
	docs := []diffDoc{
		{name: "fig1", data: []byte(`<a><a><c/></a><b/><c/></a>`)},
		{name: "prolog", data: []byte(`<?xml version="1.0"?><r a="1">t<!--c--><x/><![CDATA[<raw>]]></r>`)},
		{name: "entities", data: []byte(`<a>&lt;&amp;&unknown;&gt;x&apos;&quot;&bad</a>`)},
		{name: "doctype", data: []byte(`<!DOCTYPE r [<!ELEMENT r ANY>]><r/>`)},
		{name: "attrs", data: []byte(`<r><a k="1" l='&amp;"'/><a k="&#60;x"/><a verylongvaluehere="0123456789012345678901234567890123456789"/></r>`)},
		{name: "selfclose-space", data: []byte(`<r><a/ ><b x="1"/ ></r>`)},
		{name: "mixed-text", data: []byte("<r>alpha<b>beta</b>  \n\tgamma<b/>delta</r>")},
		{name: "cdata-edges", data: []byte(`<r><![CDATA[]]><![CDATA[]]]]><![CDATA[a]b]]></r>`)},
		{name: "comments", data: []byte(`<!--before--><r><!--- -- inner ---></r><!--after-->`)},
		{name: "pis", data: []byte(`<?pre?><r><?mid a?b??></r><?post?>`)},
		{name: "epilog-ws", data: []byte("  <r/>  \n ")},
		{name: "unicode", data: []byte("<élément attrü=\"väl\">têxt</élément>")},

		// Malformed: every error class, at varied positions.
		{name: "empty", data: []byte(``)},
		{name: "text-only", data: []byte(`plain text`)},
		{name: "truncated-tag", data: []byte(`<r><a`)},
		{name: "truncated-name", data: []byte(`<r><abc`)},
		{name: "truncated-attr", data: []byte(`<r><a k="v`)},
		{name: "truncated-attr-eq", data: []byte(`<r><a k=`)},
		{name: "truncated-comment", data: []byte(`<r><!-- never ends`)},
		{name: "truncated-cdata", data: []byte(`<r><![CDATA[ never ends`)},
		{name: "truncated-pi", data: []byte(`<r><?pi never ends`)},
		{name: "truncated-doctype", data: []byte(`<!DOCTYPE r [ <!ELEMENT`)},
		{name: "truncated-lt", data: []byte(`<r>text<`)},
		{name: "truncated-endtag", data: []byte(`<r></r`)},
		{name: "unclosed", data: []byte(`<r><a><b></b>`)},
		{name: "mismatch", data: []byte(`<r><a></b></a></r>`)},
		{name: "stray-end", data: []byte(`</a>`)},
		{name: "after-root", data: []byte(`<r></r><x/>`)},
		{name: "after-root-text-tag", data: []byte(`<r/>junk<x/>`)},
		{name: "double-root-self", data: []byte(`<a/><b/>`)},
		{name: "bad-name-start", data: []byte(`<r><1bad/></r>`)},
		{name: "bad-name-byte", data: []byte(`<r><a$></a$></r>`)},
		{name: "bad-endtag-byte", data: []byte(`<r></r$>`)},
		{name: "endtag-space-junk", data: []byte(`<r></r x>`)},
		{name: "unquoted-value", data: []byte(`<r><a k=1/></r>`)},
		{name: "raw-lt-in-value", data: []byte(`<r><a k="a<b"/></r>`)},
		{name: "dup-attr", data: []byte(`<r><a k="1" k="2"/></r>`), opts: nil},
		{name: "attr-no-eq", data: []byte(`<r><a k "1"/></r>`)},
		{name: "nul-byte", data: []byte("<\x00>")},
		{name: "high-bytes", data: []byte("<a>\xff\xfe</a>")},

		// Limit errors: token and depth caps far below the defaults.
		{name: "limit-text", data: []byte(`<r>0123456789abcdef</r>`), opts: []xmlstream.ScannerOption{tiny}},
		{name: "limit-tagname", data: []byte(`<r><averylongtagname/></r>`), opts: []xmlstream.ScannerOption{tiny}},
		{name: "limit-endtag", data: []byte(`<rootelementname>x</rootelementname>`), opts: []xmlstream.ScannerOption{tiny}},
		{name: "limit-attrname", data: []byte(`<r><a longattributename="v"/></r>`), opts: []xmlstream.ScannerOption{tiny}},
		{name: "limit-attrvalue", data: []byte(`<r><a k="long attribute value"/></r>`), opts: []xmlstream.ScannerOption{tiny}},
		{name: "limit-cdata", data: []byte(`<r><![CDATA[far too much content]]></r>`), opts: []xmlstream.ScannerOption{tiny}},
		{name: "limit-depth", data: []byte(`<a><b><c><d><e/></d></c></b></a>`), opts: []xmlstream.ScannerOption{shallow}},
		{name: "limit-depth-ok", data: []byte(`<a><b><c/></b><b/></a>`), opts: []xmlstream.ScannerOption{shallow}},
	}
	// The same syntax edges with attribute tokenization off (the paper's
	// model): the skip path has its own self-close detection.
	noattr := xmlstream.WithAttributes(false)
	for _, d := range []diffDoc{
		{name: "noattr-fig1", data: []byte(`<a><a k="1"><c x='y'/></a><b/><c/></a>`)},
		{name: "noattr-selfclose-space", data: []byte(`<r><a/ ><b x="1"/ ><c x="/>"></c></r>`)},
		{name: "noattr-quoted-gt", data: []byte(`<r><a k="a>b"><x/></a></r>`)},
		{name: "noattr-truncated", data: []byte(`<r><a k="v`)},
	} {
		d.opts = append(d.opts, noattr)
		docs = append(docs, d)
	}
	// Structural-only scans (count mode) over mixed content.
	docs = append(docs, diffDoc{
		name: "notext",
		data: []byte(`<r>alpha<b>beta</b><![CDATA[x]]></r>`),
		opts: []xmlstream.ScannerOption{xmlstream.WithText(false)},
	})
	return docs
}

// generatedCorpus renders the spexgen document family small enough that the
// full chunk-size sweep stays fast: the paper's datasets, the ticket corpus
// (attribute-heavy), the adversarial shapes, and the synthetic trees.
func generatedCorpus() []diffDoc {
	gen := []struct {
		name string
		doc  *dataset.Doc
	}{
		{"mondial", dataset.Mondial(0.01)},
		{"wordnet", dataset.WordNet(0.005)},
		{"dmoz-structure", dataset.DMOZStructure(0.002)},
		{"dmoz-content", dataset.DMOZContent(0.001)},
		{"tickets", dataset.Tickets(0.01)},
		{"adversarial-deep", dataset.Deep(60)},
		{"adversarial-fanout", dataset.Fanout(200)},
		{"adversarial-fanout-late", dataset.FanoutLate(200)},
		{"adversarial-qualbomb", dataset.QualBomb(40)},
		{"adversarial-emptyrun", dataset.EmptyRun(300)},
		{"random-tree", dataset.RandomTreeText(7, 6, 4, []string{"a", "b", "c"}, []string{"", "x", "&lt;t&gt;"})},
		{"recursive", dataset.Recursive("a", 40)},
		{"ladder", dataset.Ladder(30)},
	}
	docs := make([]diffDoc, 0, len(gen))
	for _, g := range gen {
		docs = append(docs, diffDoc{name: g.name, data: g.doc.Bytes()})
	}
	return docs
}

// fuzzSeedCorpus loads any checked-in go-fuzz corpus files for FuzzScanner,
// so crashers found by the fuzzer become permanent differential fixtures.
func fuzzSeedCorpus(t *testing.T) []diffDoc {
	var docs []diffDoc
	dir := filepath.Join("testdata", "fuzz", "FuzzScanner")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fuzz corpus %s: %v", e.Name(), err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") {
				continue
			}
			if s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")")); err == nil {
				docs = append(docs, diffDoc{name: "fuzz-" + e.Name(), data: []byte(s)})
			}
		}
	}
	return docs
}

func diffCorpus(t *testing.T) []diffDoc {
	docs := handwrittenCorpus()
	docs = append(docs, generatedCorpus()...)
	docs = append(docs, fuzzSeedCorpus(t)...)
	return docs
}

// chunkReader delivers at most n bytes per Read, exercising every buffer
// refill boundary in the scanner.
type chunkReader struct {
	data []byte
	n    int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// scanSource is the accounting surface shared by Scanner and
// ParallelScanner.
type scanSource interface {
	Next() (xmlstream.Event, error)
	InputOffset() int64
	ErrorOffset() int64
	Events() int64
	MaxDepth() int
}

// scanOutcome captures everything the harness compares.
type scanOutcome struct {
	events   []xmlstream.Event
	offs     []int64 // InputOffset after each event
	err      error
	errOff   int64
	total    int64 // Events() at the end
	maxDepth int
}

func runScan(src scanSource) scanOutcome {
	var r scanOutcome
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			r.err = err
			r.errOff = src.ErrorOffset()
			break
		}
		r.events = append(r.events, ev)
		r.offs = append(r.offs, src.InputOffset())
	}
	r.total = src.Events()
	r.maxDepth = src.MaxDepth()
	return r
}

// scanSentinels are the error classes whose fidelity the harness enforces.
var scanSentinels = []struct {
	name string
	err  error
}{
	{"ErrTruncated", xmlstream.ErrTruncated},
	{"ErrTokenTooLarge", xmlstream.ErrTokenTooLarge},
	{"ErrTooDeep", xmlstream.ErrTooDeep},
	{"ErrDuplicateAttr", xmlstream.ErrDuplicateAttr},
}

func errClass(err error) string {
	if err == nil {
		return "<nil>"
	}
	for _, s := range scanSentinels {
		if errors.Is(err, s.err) {
			return s.name
		}
	}
	return "malformed"
}

func sameAttrs(a, b []xmlstream.Attr, ignoreSym bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Value != b[i].Value {
			return false
		}
		if !ignoreSym && a[i].Sym != b[i].Sym {
			return false
		}
	}
	return true
}

func diffEvents(want, got scanOutcome, ignoreSym bool) string {
	n := len(want.events)
	if len(got.events) < n {
		n = len(got.events)
	}
	for i := 0; i < n; i++ {
		a, b := want.events[i], got.events[i]
		switch {
		case a.Kind != b.Kind, a.Name != b.Name, a.Data != b.Data,
			!sameAttrs(a.Attrs, b.Attrs, ignoreSym),
			!ignoreSym && a.Sym != b.Sym:
			return fmt.Sprintf("event %d: want %v (sym %d), got %v (sym %d)", i, a, a.Sym, b, b.Sym)
		}
		if want.offs[i] != got.offs[i] {
			return fmt.Sprintf("event %d (%v): InputOffset %d, want %d", i, a, got.offs[i], want.offs[i])
		}
	}
	if len(want.events) != len(got.events) {
		return fmt.Sprintf("event count %d, want %d", len(got.events), len(want.events))
	}
	return ""
}

// compareSerial holds the fast engine to the full contract: identical
// events, symbols, offsets, error class and error offset.
func compareSerial(t *testing.T, label string, want, got scanOutcome) {
	t.Helper()
	if d := diffEvents(want, got, false); d != "" {
		t.Fatalf("%s: %s", label, d)
	}
	if errClass(want.err) != errClass(got.err) {
		t.Fatalf("%s: error class %s (%v), want %s (%v)", label, errClass(got.err), got.err, errClass(want.err), want.err)
	}
	if want.err != nil && want.errOff != got.errOff {
		t.Fatalf("%s: ErrorOffset %d, want %d (err %v)", label, got.errOff, want.errOff, want.err)
	}
	if want.total != got.total || want.maxDepth != got.maxDepth {
		t.Fatalf("%s: accounting Events/MaxDepth %d/%d, want %d/%d",
			label, got.total, got.maxDepth, want.total, want.maxDepth)
	}
}

// compareParallel relaxes exactly two things (documented in parallel.go):
// symbols are interned concurrently, and a handful of document-level
// malformations are detected by the stitcher, where the error class and
// offset may lawfully differ (a second root cut off at end of input is
// "content after root" serially but a truncation in the chunk that holds
// it). Sentinel errors raised inside a chunk keep exact class and offset.
func compareParallel(t *testing.T, label string, want, got scanOutcome) {
	t.Helper()
	if d := diffEvents(want, got, true); d != "" {
		t.Fatalf("%s: %s", label, d)
	}
	if (want.err == nil) != (got.err == nil) {
		t.Fatalf("%s: error presence %v, want %v", label, got.err, want.err)
	}
	if wc, gc := errClass(want.err), errClass(got.err); wc == gc && want.err != nil && wc != "malformed" {
		if want.errOff != got.errOff {
			t.Fatalf("%s: ErrorOffset %d, want %d (err %v)", label, got.errOff, want.errOff, want.err)
		}
	}
	if want.total != got.total || want.maxDepth != got.maxDepth {
		t.Fatalf("%s: accounting Events/MaxDepth %d/%d, want %d/%d",
			label, got.total, got.maxDepth, want.total, want.maxDepth)
	}
}

// chunkSizes is the reader-granularity sweep: every size 1..64.
func chunkSizes() []int {
	sizes := make([]int, 64)
	for i := range sizes {
		sizes[i] = i + 1
	}
	return sizes
}

// TestDifferentialSerial replays the corpus through seed vs zero-copy at
// every chunk size 1..64 plus the in-memory (ScanBytes) path.
func TestDifferentialSerial(t *testing.T) {
	for _, d := range diffCorpus(t) {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			ref := runScan(xmlstream.NewScanner(bytes.NewReader(d.data), seedOpts(d.opts)...))
			// The seed engine must itself be chunk-size invariant (it is the
			// oracle); spot-check a few granularities.
			for _, n := range []int{1, 7, 64} {
				got := runScan(xmlstream.NewScanner(&chunkReader{data: d.data, n: n}, seedOpts(d.opts)...))
				compareSerial(t, fmt.Sprintf("seed chunk=%d", n), ref, got)
			}
			for _, n := range chunkSizes() {
				got := runScan(xmlstream.NewScanner(&chunkReader{data: d.data, n: n}, freshOpts(d.opts)...))
				compareSerial(t, fmt.Sprintf("fast chunk=%d", n), ref, got)
			}
			got := runScan(xmlstream.ScanBytes(d.data, freshOpts(d.opts)...))
			compareSerial(t, "fast bytes", ref, got)
		})
	}
}

// TestDifferentialParallel replays the corpus through the parallel chunk
// scanner under adversarial split choices: regular strides, every boundary
// in small documents, and deterministic pseudo-random target sets.
func TestDifferentialParallel(t *testing.T) {
	for _, d := range diffCorpus(t) {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			ref := runScan(xmlstream.NewScanner(bytes.NewReader(d.data), seedOpts(d.opts)...))
			for _, targets := range splitChoices(len(d.data)) {
				got := runScan(xmlstream.NewParallelScannerAt(d.data, targets, freshOpts(d.opts)...))
				compareParallel(t, fmt.Sprintf("parallel targets=%v", targets), ref, got)
			}
		})
	}
}

// splitChoices generates target sets for a document of n bytes: regular
// strides and xorshift-derived irregular sets.
func splitChoices(n int) [][]int {
	if n == 0 {
		return [][]int{nil}
	}
	choices := [][]int{nil}
	for _, stride := range []int{1, 2, 3, 5, 8, 13, 21, 34, 55} {
		if stride >= n {
			continue
		}
		var ts []int
		for off := stride; off < n && len(ts) < 64; off += stride {
			ts = append(ts, off)
		}
		choices = append(choices, ts)
	}
	// Irregular sets from a deterministic xorshift stream.
	s := uint64(n)*0x9E3779B97F4A7C15 + 1
	for set := 0; set < 4; set++ {
		var ts []int
		for k := 0; k < 1+set*3; k++ {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			ts = append(ts, int((s*0x2545F4914F6CDD1D)%uint64(n)))
		}
		choices = append(choices, ts)
	}
	return choices
}

// seedOpts appends WithSeedScan and a fresh symtab to the document options.
func seedOpts(opts []xmlstream.ScannerOption) []xmlstream.ScannerOption {
	out := append([]xmlstream.ScannerOption{}, opts...)
	return append(out, xmlstream.WithSeedScan(true), xmlstream.WithSymtab(xmlstream.NewSymtab()))
}

// freshOpts appends a fresh symtab (fast engine, the default).
func freshOpts(opts []xmlstream.ScannerOption) []xmlstream.ScannerOption {
	out := append([]xmlstream.ScannerOption{}, opts...)
	return append(out, xmlstream.WithSymtab(xmlstream.NewSymtab()))
}
