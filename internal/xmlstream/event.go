// Package xmlstream implements the XML stream data model of the SPEX paper
// (§II.1): a document is conveyed as a sequence of document messages produced
// by a depth-first left-to-right traversal of the document tree, bracketed by
// the start-document message <$> and the end-document message </$>.
//
// The package provides a fast byte-level streaming scanner, an adapter over
// encoding/xml, a serializer, and stream statistics. It deliberately ignores
// attributes, namespaces, processing instructions and comments, exactly as
// the paper does; the scanner tolerates and skips them.
package xmlstream

import "fmt"

// Kind classifies a stream event.
type Kind uint8

// Event kinds. StartDocument and EndDocument correspond to the paper's <$>
// and </$> messages; StartElement and EndElement to <a> and </a>; Text
// carries character data, which plays no structural role in rpeq evaluation
// but is preserved so that query results serialize faithfully.
const (
	StartDocument Kind = iota
	EndDocument
	StartElement
	EndElement
	Text
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case StartDocument:
		return "start-document"
	case EndDocument:
		return "end-document"
	case StartElement:
		return "start-element"
	case EndElement:
		return "end-element"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one document message. Name is the element label for StartElement
// and EndElement; Data is the character data for Text events.
//
// Sym is the label's interned symbol when the producer resolved the event
// against a Symtab (the scanner does when built WithSymtab); the zero Sym
// means unresolved, and the evaluating network resolves it against its own
// table. The field fits in the struct's existing padding, so carrying it is
// free.
type Event struct {
	Kind Kind
	Sym  Sym
	Name string
	Data string
}

// String renders the event in the paper's message notation.
func (e Event) String() string {
	switch e.Kind {
	case StartDocument:
		return "<$>"
	case EndDocument:
		return "</$>"
	case StartElement:
		return "<" + e.Name + ">"
	case EndElement:
		return "</" + e.Name + ">"
	case Text:
		return e.Data
	default:
		return "?"
	}
}

// Structural reports whether the event is a document message in the paper's
// sense (an element or document boundary, as opposed to character data).
func (e Event) Structural() bool { return e.Kind != Text }

// Start returns an Event for the start message of an element with the given
// label.
func Start(name string) Event { return Event{Kind: StartElement, Name: name} }

// End returns an Event for the end message of an element with the given
// label.
func End(name string) Event { return Event{Kind: EndElement, Name: name} }

// Chars returns a Text event carrying the given character data.
func Chars(data string) Event { return Event{Kind: Text, Data: data} }
