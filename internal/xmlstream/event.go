// Package xmlstream implements the XML stream data model of the SPEX paper
// (§II.1): a document is conveyed as a sequence of document messages produced
// by a depth-first left-to-right traversal of the document tree, bracketed by
// the start-document message <$> and the end-document message </$>.
//
// The package provides a fast byte-level streaming scanner, an adapter over
// encoding/xml, a serializer, and stream statistics. Start messages carry the
// element's attributes (an extension over the paper's model, enabling
// attribute predicates that decide at the start message); namespaces,
// processing instructions and comments are still deliberately ignored, as in
// the paper — the scanner tolerates and skips them.
package xmlstream

import (
	"fmt"
	"strings"
)

// Kind classifies a stream event.
type Kind uint8

// Event kinds. StartDocument and EndDocument correspond to the paper's <$>
// and </$> messages; StartElement and EndElement to <a> and </a>; Text
// carries character data, which plays no structural role in rpeq evaluation
// but is preserved so that query results serialize faithfully.
const (
	StartDocument Kind = iota
	EndDocument
	StartElement
	EndElement
	Text
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case StartDocument:
		return "start-document"
	case EndDocument:
		return "end-document"
	case StartElement:
		return "start-element"
	case EndElement:
		return "end-element"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Attr is one attribute of a start-element message. Sym is the attribute
// name's interned symbol when the producer resolved it against a Symtab
// (attribute names share the element-label table; values are never interned
// there, since their cardinality is unbounded).
type Attr struct {
	Name  string
	Sym   Sym
	Value string
}

// Event is one document message. Name is the element label for StartElement
// and EndElement; Data is the character data for Text events; Attrs carries
// the element's attributes, in document order, on StartElement events only.
//
// Sym is the label's interned symbol when the producer resolved the event
// against a Symtab (the scanner does when built WithSymtab); the zero Sym
// means unresolved, and the evaluating network resolves it against its own
// table. The field fits in the struct's existing padding, so carrying it is
// free.
type Event struct {
	Kind  Kind
	Sym   Sym
	Name  string
	Data  string
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it is present.
// Lookup is linear: real-world attribute lists are short, and the scanner
// preserves document order.
func (e Event) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrSym returns the value of the attribute whose interned name symbol is
// sym, and whether it is present. It is the allocation-free integer-compare
// lookup the attribute-test transducer uses when producer and network share
// a Symtab.
func (e Event) AttrSym(sym Sym) (string, bool) {
	for _, a := range e.Attrs {
		if a.Sym == sym {
			return a.Value, true
		}
	}
	return "", false
}

// String renders the event in the paper's message notation; attributes
// render in document order inside the start message.
func (e Event) String() string {
	switch e.Kind {
	case StartDocument:
		return "<$>"
	case EndDocument:
		return "</$>"
	case StartElement:
		if len(e.Attrs) == 0 {
			return "<" + e.Name + ">"
		}
		var b strings.Builder
		b.WriteByte('<')
		b.WriteString(e.Name)
		for _, a := range e.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Value))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		return b.String()
	case EndElement:
		return "</" + e.Name + ">"
	case Text:
		return e.Data
	default:
		return "?"
	}
}

// Structural reports whether the event is a document message in the paper's
// sense (an element or document boundary, as opposed to character data).
func (e Event) Structural() bool { return e.Kind != Text }

// Start returns an Event for the start message of an element with the given
// label.
func Start(name string) Event { return Event{Kind: StartElement, Name: name} }

// StartAttrs returns an Event for the start message of an element carrying
// the given attributes, in the given order.
func StartAttrs(name string, attrs ...Attr) Event {
	return Event{Kind: StartElement, Name: name, Attrs: attrs}
}

// End returns an Event for the end message of an element with the given
// label.
func End(name string) Event { return Event{Kind: EndElement, Name: name} }

// Chars returns a Text event carrying the given character data.
func Chars(data string) Event { return Event{Kind: Text, Data: data} }
