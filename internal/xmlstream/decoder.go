package xmlstream

import (
	"encoding/xml"
	"io"
)

// Decoder adapts encoding/xml's token stream to the Event stream of this
// package. It exists as a conformance reference for the hand-written Scanner
// (the two are cross-checked in tests) and as a robust fallback for inputs
// the fast scanner does not accept.
type Decoder struct {
	d       *xml.Decoder
	started bool
	ended   bool
	depth   int
}

// NewDecoder returns a Decoder over r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{d: xml.NewDecoder(r)}
}

// Next returns the next event, mirroring Scanner.Next: a StartDocument
// first, EndDocument last, io.EOF thereafter.
func (d *Decoder) Next() (Event, error) {
	if !d.started {
		d.started = true
		return Event{Kind: StartDocument}, nil
	}
	if d.ended {
		return Event{}, io.EOF
	}
	for {
		tok, err := d.d.Token()
		if err == io.EOF {
			d.ended = true
			return Event{Kind: EndDocument}, nil
		}
		if err != nil {
			return Event{}, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			d.depth++
			var attrs []Attr
			if len(t.Attr) > 0 {
				attrs = make([]Attr, 0, len(t.Attr))
				for _, a := range t.Attr {
					// Namespace declarations are not part of this package's
					// model; the scanner treats them as ordinary attributes,
					// so keep them (with their prefixed spelling) here too.
					name := a.Name.Local
					if a.Name.Space == "xmlns" {
						name = "xmlns:" + a.Name.Local
					}
					attrs = append(attrs, Attr{Name: name, Value: a.Value})
				}
			}
			return Event{Kind: StartElement, Name: t.Name.Local, Attrs: attrs}, nil
		case xml.EndElement:
			d.depth--
			return Event{Kind: EndElement, Name: t.Name.Local}, nil
		case xml.CharData:
			if d.depth > 0 && len(t) > 0 {
				return Event{Kind: Text, Data: string(t)}, nil
			}
		}
		// Comments, directives and PIs are skipped, as in Scanner.
	}
}

// Source is the interface shared by Scanner, Decoder and in-memory event
// sequences: a pull-based stream of events terminated by io.EOF.
type Source interface {
	Next() (Event, error)
}

// SliceSource serves a fixed sequence of events; useful in tests and for
// replaying buffered fragments.
type SliceSource struct {
	Events []Event
	pos    int
}

// Next implements Source.
func (s *SliceSource) Next() (Event, error) {
	if s.pos >= len(s.Events) {
		return Event{}, io.EOF
	}
	ev := s.Events[s.pos]
	s.pos++
	return ev, nil
}

// Reset rewinds the source to the first event, so one pre-scanned sequence
// can be replayed many times (the ablation benchmarks measure the evaluation
// pipeline without re-tokenizing the input).
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains src into a slice. It is intended for tests and small
// documents; it defeats streaming by construction.
func Collect(src Source) ([]Event, error) {
	var out []Event
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}
