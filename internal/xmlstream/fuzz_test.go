package xmlstream

import (
	"strings"
	"testing"
)

// FuzzScanner feeds arbitrary bytes to the scanner: it must never panic,
// and whenever it accepts a document, the events must be balanced and the
// serialization must rescan to the same events. Three engines face every
// input: the seed byte-at-a-time engine (the oracle), the zero-copy engine,
// and the parallel chunk scanner with split points derived from the input
// itself — all must agree on events, error presence, and (for the serial
// pair) error offsets.
func FuzzScanner(f *testing.F) {
	seeds := []string{
		`<a><a><c/></a><b/><c/></a>`,
		`<?xml version="1.0"?><r a="1">t<!--c--><x/><![CDATA[<]]></r>`,
		`<a>&lt;&unknown;</a>`,
		`<a`, `</a>`, `<a></b>`, `<!DOCTYPE r [<!ELEMENT r ANY>]><r/>`,
		``, `plain`, `<a><b/></a><c/>`, "<\x00>", "<a>\xff</a>",
		`<a k="1" l='&amp;"'/>`, `<a k="1" k="2"/>`, `<a k=1/>`, `<a k="`,
		`<items><item status="closed"><summary/></item></items>`,
		// Split-point attacks for the parallel arm: whitespace-gapped
		// self-closing tags, CDATA terminators and comment dashes that can
		// land on chunk edges, text runs spanning would-be boundaries.
		`<r><a/ ><![CDATA[x]]]]><!----->--<b x=">"/></r>`,
		`<r>tail text runs past every boundary</r><?pi?>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		seedEvs, seedErr := Collect(NewScanner(strings.NewReader(doc), WithSeedScan(true)))
		evs, err := Collect(NewScanner(strings.NewReader(doc)))
		// Engine equivalence holds for malformed inputs too: same events
		// delivered before the error, same error presence.
		if (err == nil) != (seedErr == nil) {
			t.Fatalf("engines disagree on %q: fast err %v, seed err %v", doc, err, seedErr)
		}
		if len(evs) != len(seedEvs) {
			t.Fatalf("engines disagree on %q: %d events vs seed %d", doc, len(evs), len(seedEvs))
		}
		for i := range evs {
			if !sameEvent(evs[i], seedEvs[i]) {
				t.Fatalf("engines disagree on %q at event %d: %v vs seed %v", doc, i, evs[i], seedEvs[i])
			}
		}
		// Parallel chunk-scan arm: split targets fuzzed from the input bytes
		// (deterministic, so crashers reproduce from the corpus file alone).
		if n := len(doc); n > 1 {
			h := uint64(n) * 0x9E3779B97F4A7C15
			for _, c := range []byte(doc) {
				h = (h ^ uint64(c)) * 0x100000001B3
			}
			var targets []int
			for k := 0; k < 1+int(h%4); k++ {
				h ^= h >> 12
				h ^= h << 25
				h ^= h >> 27
				targets = append(targets, int((h*0x2545F4914F6CDD1D)%uint64(n)))
			}
			pevs, perr := Collect(NewParallelScannerAt([]byte(doc), targets))
			if (perr == nil) != (err == nil) {
				t.Fatalf("parallel scan of %q at %v: err %v, serial err %v", doc, targets, perr, err)
			}
			if len(pevs) != len(evs) {
				t.Fatalf("parallel scan of %q at %v: %d events, serial %d", doc, targets, len(pevs), len(evs))
			}
			for i := range pevs {
				if !sameEvent(pevs[i], evs[i]) {
					t.Fatalf("parallel scan of %q at %v: event %d %v, serial %v", doc, targets, i, pevs[i], evs[i])
				}
			}
		}
		if err != nil {
			return // malformed input is fine; panics are not
		}
		// Accepted documents must be balanced.
		depth := 0
		for _, ev := range evs {
			switch ev.Kind {
			case StartElement:
				depth++
			case EndElement:
				depth--
				if depth < 0 {
					t.Fatalf("unbalanced events for %q: %v", doc, evs)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("unclosed events for %q: %v", doc, evs)
		}
		// Round trip. Adjacent text events (e.g. character data next to a
		// CDATA section) legitimately coalesce, so compare merged forms.
		evs2, err := Collect(NewScanner(strings.NewReader(Serialize(evs))))
		if err != nil {
			t.Fatalf("serialization of %q does not rescan: %v", doc, err)
		}
		a, b := mergeText(evs), mergeText(evs2)
		if len(a) != len(b) {
			t.Fatalf("round trip changed event count for %q: %d vs %d", doc, len(a), len(b))
		}
		for i := range a {
			if !sameEvent(a[i], b[i]) {
				t.Fatalf("round trip changed event %d for %q: %v vs %v", i, doc, a[i], b[i])
			}
		}
	})
}

// mergeText coalesces runs of adjacent text events.
func mergeText(evs []Event) []Event {
	var out []Event
	for _, ev := range evs {
		if ev.Kind == Text && len(out) > 0 && out[len(out)-1].Kind == Text {
			out[len(out)-1].Data += ev.Data
			continue
		}
		out = append(out, ev)
	}
	return out
}
