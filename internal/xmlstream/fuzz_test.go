package xmlstream

import (
	"strings"
	"testing"
)

// FuzzScanner feeds arbitrary bytes to the scanner: it must never panic,
// and whenever it accepts a document, the events must be balanced and the
// serialization must rescan to the same events.
func FuzzScanner(f *testing.F) {
	seeds := []string{
		`<a><a><c/></a><b/><c/></a>`,
		`<?xml version="1.0"?><r a="1">t<!--c--><x/><![CDATA[<]]></r>`,
		`<a>&lt;&unknown;</a>`,
		`<a`, `</a>`, `<a></b>`, `<!DOCTYPE r [<!ELEMENT r ANY>]><r/>`,
		``, `plain`, `<a><b/></a><c/>`, "<\x00>", "<a>\xff</a>",
		`<a k="1" l='&amp;"'/>`, `<a k="1" k="2"/>`, `<a k=1/>`, `<a k="`,
		`<items><item status="closed"><summary/></item></items>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		evs, err := Collect(NewScanner(strings.NewReader(doc)))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		// Accepted documents must be balanced.
		depth := 0
		for _, ev := range evs {
			switch ev.Kind {
			case StartElement:
				depth++
			case EndElement:
				depth--
				if depth < 0 {
					t.Fatalf("unbalanced events for %q: %v", doc, evs)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("unclosed events for %q: %v", doc, evs)
		}
		// Round trip. Adjacent text events (e.g. character data next to a
		// CDATA section) legitimately coalesce, so compare merged forms.
		evs2, err := Collect(NewScanner(strings.NewReader(Serialize(evs))))
		if err != nil {
			t.Fatalf("serialization of %q does not rescan: %v", doc, err)
		}
		a, b := mergeText(evs), mergeText(evs2)
		if len(a) != len(b) {
			t.Fatalf("round trip changed event count for %q: %d vs %d", doc, len(a), len(b))
		}
		for i := range a {
			if !sameEvent(a[i], b[i]) {
				t.Fatalf("round trip changed event %d for %q: %v vs %v", i, doc, a[i], b[i])
			}
		}
	})
}

// mergeText coalesces runs of adjacent text events.
func mergeText(evs []Event) []Event {
	var out []Event
	for _, ev := range evs {
		if ev.Kind == Text && len(out) > 0 && out[len(out)-1].Kind == Text {
			out[len(out)-1].Data += ev.Data
			continue
		}
		out = append(out, ev)
	}
	return out
}
