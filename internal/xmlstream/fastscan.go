package xmlstream

import (
	"bytes"
	"fmt"
	"io"
	"unsafe"
)

// The vectorized zero-copy scan engine. Instead of dispatching per byte it
// locates construct boundaries with bytes.IndexByte / bytes.Index (memchr
// under the hood) over the buffered window and parses whole constructs in
// place. Event payloads that must outlive the window (text runs, attribute
// values, attribute lists) are carved from the scanner's arenas; element and
// attribute names go through the symtab/name interner exactly as in the seed
// engine. When a construct is cut off by the window edge the engine refills
// and retries, and if the window cannot grow (token larger than the buffer,
// or end of input) it falls back to the incremental seed engine for that one
// construct, which enforces token limits byte by byte.
//
// The engine is behaviorally identical to the seed engine: same events, same
// error classes, same error offsets. The differential harness replays every
// corpus through both at every chunk size and enforces exactly that.

var (
	piEnd      = []byte("?>")
	commentEnd = []byte("-->")
	cdataEnd   = []byte("]]>")
)

// nameByteTab is isNameByte as a lookup table, for tight name-scanning loops.
var nameByteTab = func() (t [256]bool) {
	for i := 0; i < 256; i++ {
		t[i] = isNameByte(byte(i))
	}
	return
}()

// effDepth is the element depth the current construct sees. For a fragment
// scanner this is the global depth: the chunk's start depth plus elements
// opened locally, minus end tags that closed elements of earlier chunks.
func (s *Scanner) effDepth() int {
	return s.baseDepth + len(s.stack) - s.underflow
}

// inContent reports whether character data at the current position is
// document content (inside the root element) and must be emitted.
func (s *Scanner) inContent() bool {
	if s.fragment {
		return s.effDepth() > 0
	}
	return s.state == scanInDocument
}

// fastScan is the zero-copy counterpart of scan: consume input until one
// event is produced (ok=true), the construct yields no event (ok=false), or
// the input is invalid.
func (s *Scanner) fastScan() (Event, bool, error) {
	if s.state == scanDone {
		return Event{}, false, io.EOF
	}
	if s.pos >= s.end && !s.fill() {
		if s.err != nil {
			return Event{}, false, s.err
		}
		return s.finish()
	}
	if s.buf[s.pos] != '<' {
		if s.emitText && s.inContent() {
			return s.fastText()
		}
		if err := s.fastSkipText(); err != nil {
			return Event{}, false, err
		}
		return Event{}, false, nil
	}
	c, ok := s.peekAt(1)
	if !ok {
		if s.err != nil {
			return Event{}, false, s.err
		}
		s.pos++ // the dangling '<' is consumed, as readByte would
		return Event{}, false, truncatedf("unexpected end of input inside markup")
	}
	switch c {
	case '?':
		s.pos += 2
		return Event{}, false, s.fastPI()
	case '!':
		s.pos += 2
		return Event{}, false, s.fastDeclaration()
	case '/':
		return s.fastEndTag()
	default:
		return s.fastStartTag()
	}
}

// fastText scans one character-data run up to the next '<' (left unconsumed)
// and emits it. A run that fits the window is taken from it in one slice; a
// run straddling refills accumulates in the scratch buffer first.
func (s *Scanner) fastText() (Event, bool, error) {
	max := s.limits.MaxTokenBytes
	chunk := s.buf[s.pos:s.end]
	if i := bytes.IndexByte(chunk, '<'); i >= 0 {
		run := chunk[:i]
		s.pos += i
		if max > 0 && len(run) > max {
			return Event{}, false, s.tokenTooLarge("text")
		}
		return Event{Kind: Text, Data: s.windowString(run)}, true, nil
	}
	s.textBuf = append(s.textBuf[:0], chunk...)
	s.pos = s.end
	for {
		if max > 0 && len(s.textBuf) > max {
			return Event{}, false, s.tokenTooLarge("text")
		}
		if !s.fill() {
			break // end of input or read error: deliver the run, like readText
		}
		chunk = s.buf[s.pos:s.end]
		if i := bytes.IndexByte(chunk, '<'); i >= 0 {
			s.textBuf = append(s.textBuf, chunk[:i]...)
			s.pos += i
			break
		}
		s.textBuf = append(s.textBuf, chunk...)
		s.pos = s.end
	}
	if max > 0 && len(s.textBuf) > max {
		return Event{}, false, s.tokenTooLarge("text")
	}
	return Event{Kind: Text, Data: s.textString(s.textBuf)}, true, nil
}

// textString converts a raw character-data run into an arena-backed string,
// resolving the predefined entities when present.
func (s *Scanner) textString(raw []byte) string {
	if bytes.IndexByte(raw, '&') < 0 {
		return s.text.str(raw)
	}
	s.scratch = unescapeAppend(s.scratch[:0], raw)
	return s.text.str(s.scratch)
}

// windowString is textString for runs that lie inside the read window. With
// caller-owned input (ScanBytes) the window is the document itself — never
// slid, never rewritten — so an entity-free run needs no arena copy at all:
// the string is a view into the input, and the scan moves no payload bytes.
func (s *Scanner) windowString(raw []byte) string {
	if bytes.IndexByte(raw, '&') >= 0 {
		s.scratch = unescapeAppend(s.scratch[:0], raw)
		return s.text.str(s.scratch)
	}
	if s.stable {
		if len(raw) == 0 {
			return ""
		}
		return unsafe.String(&raw[0], len(raw))
	}
	return s.text.str(raw)
}

// valueString converts raw attribute-value bytes into their string, sharing
// short repeated values through the scanner's cache like the seed engine and
// carving long ones from the text arena. Attribute values always lie inside
// the window (tryAttrs parses in place), so caller-owned input skips both
// the cache and the arena: the value is a view into the document.
func (s *Scanner) valueString(raw []byte) string {
	if s.stable && bytes.IndexByte(raw, '&') < 0 {
		if len(raw) == 0 {
			return ""
		}
		return unsafe.String(&raw[0], len(raw))
	}
	if len(raw) <= maxSharedAttrValue {
		if v, ok := s.names[string(raw)]; ok { // no allocation: map lookup on []byte key
			return v
		}
		v := unescapeText(string(raw))
		s.names[string(raw)] = v
		return v
	}
	return s.textString(raw)
}

// unescapeAppend is unescapeText over bytes, appending to dst.
func unescapeAppend(dst, src []byte) []byte {
	for i := 0; i < len(src); {
		c := src[i]
		if c != '&' {
			dst = append(dst, c)
			i++
			continue
		}
		end := bytes.IndexByte(src[i:], ';')
		if end < 0 {
			dst = append(dst, src[i:]...)
			break
		}
		switch string(src[i+1 : i+end]) {
		case "lt":
			dst = append(dst, '<')
		case "gt":
			dst = append(dst, '>')
		case "amp":
			dst = append(dst, '&')
		case "apos":
			dst = append(dst, '\'')
		case "quot":
			dst = append(dst, '"')
		default:
			dst = append(dst, src[i:i+end+1]...)
		}
		i += end + 1
	}
	return dst
}

// fastSkipText consumes character data without building anything.
func (s *Scanner) fastSkipText() error {
	for {
		if s.pos >= s.end && !s.fill() {
			return s.err
		}
		if i := bytes.IndexByte(s.buf[s.pos:s.end], '<'); i >= 0 {
			s.pos += i
			return nil
		}
		s.pos = s.end
	}
}

// fastPI consumes a processing instruction after "<?" up to "?>".
func (s *Scanner) fastPI() error {
	for {
		if s.pos >= s.end && !s.fill() {
			if s.err != nil {
				return s.err
			}
			return truncatedf("unterminated processing instruction")
		}
		chunk := s.buf[s.pos:s.end]
		if i := bytes.Index(chunk, piEnd); i >= 0 {
			s.pos += i + 2
			return nil
		}
		if s.eof {
			s.pos = s.end
			return truncatedf("unterminated processing instruction")
		}
		// Keep one byte: a '?' at the window edge may pair with the next
		// window's '>'.
		if take := len(chunk) - 1; take > 0 {
			s.pos += take
		}
		if !s.fill() {
			if s.err != nil {
				return s.err
			}
			s.pos = s.end
			return truncatedf("unterminated processing instruction")
		}
	}
}

// fastDeclaration dispatches "<!" constructs: comments and CDATA sections get
// vectorized scans; DOCTYPE declarations share the seed engine's
// bracket-tracking loop (they appear at most once per document).
func (s *Scanner) fastDeclaration() error {
	if s.hasPrefix("--") {
		s.pos += 2
		return s.fastComment()
	}
	if s.hasPrefix("[CDATA[") {
		s.pos += 7
		return s.fastCDATA()
	}
	return s.skipDoctype()
}

// fastComment consumes a comment after "<!--" up to "-->".
func (s *Scanner) fastComment() error {
	for {
		if s.pos >= s.end && !s.fill() {
			if s.err != nil {
				return s.err
			}
			return truncatedf("unterminated comment")
		}
		chunk := s.buf[s.pos:s.end]
		if i := bytes.Index(chunk, commentEnd); i >= 0 {
			s.pos += i + 3
			return nil
		}
		if s.eof {
			s.pos = s.end
			return truncatedf("unterminated comment")
		}
		if take := len(chunk) - 2; take > 0 {
			s.pos += take
		}
		if !s.fill() {
			if s.err != nil {
				return s.err
			}
			s.pos = s.end
			return truncatedf("unterminated comment")
		}
	}
}

// fastCDATA consumes a CDATA section after "<![CDATA[" up to "]]>", queueing
// the content as a Text event when appropriate. CDATA content is literal: no
// entity resolution.
func (s *Scanner) fastCDATA() error {
	s.textBuf = s.textBuf[:0]
	max := s.limits.MaxTokenBytes
	for {
		if s.pos >= s.end && !s.fill() {
			if s.err != nil {
				return s.err
			}
			return truncatedf("unterminated CDATA section")
		}
		chunk := s.buf[s.pos:s.end]
		if i := bytes.Index(chunk, cdataEnd); i >= 0 {
			s.textBuf = append(s.textBuf, chunk[:i]...)
			s.pos += i + 3
			if max > 0 && len(s.textBuf) > max {
				return s.tokenTooLarge("CDATA section")
			}
			if s.emitText && s.inContent() && len(s.textBuf) > 0 {
				s.pending = append(s.pending, Event{Kind: Text, Data: s.text.str(s.textBuf)})
			}
			return nil
		}
		if s.eof {
			s.pos = s.end
			return truncatedf("unterminated CDATA section")
		}
		if take := len(chunk) - 2; take > 0 {
			s.textBuf = append(s.textBuf, chunk[:take]...)
			s.pos += take
			if max > 0 && len(s.textBuf) > max {
				return s.tokenTooLarge("CDATA section")
			}
		}
		if !s.fill() {
			if s.err != nil {
				return s.err
			}
			s.pos = s.end
			return truncatedf("unterminated CDATA section")
		}
	}
}

// batchEvents caps how many events one fastBatch pass may queue before
// handing back to Next: small enough that the pending ring stays
// cache-resident, large enough to amortize the per-call dispatch to noise.
const batchEvents = 64

// pushPend queues an event produced by the batch loop together with the
// input offset just past its construct — the value InputOffset must report
// when the event is delivered.
func (s *Scanner) pushPend(ev Event, end int) {
	s.pending = append(s.pending, ev)
	s.pendOffs = append(s.pendOffs, s.base+int64(end))
}

// fastBatch is the throughput core of the stable-window (caller-owned bytes)
// configuration. It tokenizes the common in-document constructs — start tags,
// end tags, character data — in one tight loop with the parse state in
// locals, queueing events into the pending ring instead of returning through
// the per-construct dispatch once per event. Anything unusual (declarations,
// PIs, malformed or window-cut constructs, token/depth limit trips, the
// root's close) is left exactly where it was found for the general path,
// which owns error production; the grammar here mirrors tryStartTag,
// tryEndTag and fastText construct for construct, which is what keeps the
// differential harness green. Reports whether any events were queued.
func (s *Scanner) fastBatch() bool {
	b := s.buf[:s.end]
	i := s.pos
	n := 0
	maxTok := s.limits.MaxTokenBytes
	maxDepth := s.limits.MaxDepth
loop:
	for n < batchEvents && i < len(b) {
		if b[i] != '<' {
			j := bytes.IndexByte(b[i:], '<')
			if j < 0 {
				break // run cut off by end of input: general path owns it
			}
			if s.emitText && s.inContent() {
				if maxTok > 0 && j > maxTok {
					break
				}
				s.pushPend(Event{Kind: Text, Data: s.windowString(b[i : i+j])}, i+j)
				n++
			}
			i += j
			continue
		}
		if i+1 >= len(b) {
			break
		}
		switch c := b[i+1]; {
		case c == '/':
			// End tag, with tryEndTag's grammar.
			ns := i + 2
			j := ns
			for j < len(b) && nameByteTab[b[j]] {
				j++
			}
			if maxTok > 0 && j-ns > maxTok {
				break loop
			}
			k := j
			for k < len(b) && isSpace(b[k]) {
				k++
			}
			if k >= len(b) || b[k] != '>' {
				break loop
			}
			if len(s.stack) == 0 {
				if !s.fragment {
					break loop // unexpected end tag: general path reports it
				}
				nm, sym := s.intern(b[ns:j])
				s.underflow++
				s.pushPend(Event{Kind: EndElement, Sym: sym, Name: nm}, k+1)
			} else {
				open := s.stack[len(s.stack)-1]
				if open != string(b[ns:j]) { // no allocation: string compare on []byte
					break loop // mismatched end tag: general path reports it
				}
				sym := s.stackSyms[len(s.stackSyms)-1]
				s.stack = s.stack[:len(s.stack)-1]
				s.stackSyms = s.stackSyms[:len(s.stackSyms)-1]
				s.pushPend(Event{Kind: EndElement, Sym: sym, Name: open}, k+1)
				if len(s.stack) == 0 && !s.fragment {
					// The root just closed; the epilog belongs to the
					// general path.
					s.state = scanAfterRoot
					s.pos = k + 1
					return true
				}
			}
			n++
			i = k + 1
		case isNameStart(c):
			// Start tag, with tryStartTag's grammar.
			if maxDepth > 0 && s.effDepth() >= maxDepth {
				break loop
			}
			ns := i + 1
			j := ns + 1
			for j < len(b) && nameByteTab[b[j]] {
				j++
			}
			if maxTok > 0 && j-ns > maxTok {
				break loop
			}
			if j >= len(b) {
				break loop
			}
			tag := b[ns:j]
			var name string
			var sym Sym
			var attrs []Attr
			selfClose := false
			switch c2 := b[j]; {
			case c2 == '>':
				name, sym = s.intern(tag)
				j++
			case c2 == '/':
				k := j + 1
				for k < len(b) && isSpace(b[k]) {
					k++
				}
				if k >= len(b) || b[k] != '>' {
					break loop
				}
				name, sym = s.intern(tag)
				j = k + 1
				selfClose = true
			case isSpace(c2):
				if !s.emitAttrs {
					end, sc, done := trySkipAttrsIn(b, j+1)
					if !done {
						break loop
					}
					name, sym = s.intern(tag)
					j, selfClose = end, sc
				} else {
					end, sc, done, aerr := s.tryAttrs(b, tag, j+1)
					if aerr != nil || !done {
						break loop
					}
					attrs = s.takeAttrsArena()
					name, sym = s.intern(tag)
					j, selfClose = end, sc
				}
			default:
				break loop
			}
			s.state = scanInDocument
			if selfClose {
				// A self-closing root is unreachable here: in-document (or
				// fragment) scanning implies the construct never empties a
				// non-fragment stack, so no scanAfterRoot transition.
				s.pushPend(Event{Kind: StartElement, Sym: sym, Name: name, Attrs: attrs}, j)
				s.pushPend(Event{Kind: EndElement, Sym: sym, Name: name}, j)
				n += 2
			} else {
				s.stack = append(s.stack, name)
				s.stackSyms = append(s.stackSyms, sym)
				s.pushPend(Event{Kind: StartElement, Sym: sym, Name: name, Attrs: attrs}, j)
				n++
			}
			i = j
		default:
			break loop // '?', '!' or invalid markup: per-construct path owns it
		}
	}
	s.pos = i
	return n > 0
}

// fastStartTag parses a start tag wholly within the buffered window, retrying
// after a refill when the tag is cut off and falling back to the seed engine
// when the window cannot grow.
func (s *Scanner) fastStartTag() (Event, bool, error) {
	if s.state == scanAfterRoot {
		return Event{}, false, fmt.Errorf("xmlstream: content after document root")
	}
	if max := s.limits.MaxDepth; max > 0 && s.effDepth() >= max {
		return Event{}, false, &ScanLimitError{What: "nesting", Limit: max, sentinel: ErrTooDeep}
	}
	for {
		ev, ok, complete, err := s.tryStartTag()
		if err != nil || complete {
			return ev, ok, err
		}
		avail := s.end - s.pos
		if s.fill() && s.end-s.pos > avail {
			continue
		}
		// Window exhausted mid-tag: the seed engine finishes this construct
		// incrementally (and enforces token limits along the way).
		s.pos++ // consume '<' exactly as scan would
		c, ok2 := s.readByte()
		if !ok2 {
			if s.err != nil {
				return Event{}, false, s.err
			}
			return Event{}, false, truncatedf("unexpected end of input inside markup")
		}
		return s.scanStartTag(c)
	}
}

// tryStartTag attempts to parse the start tag at s.pos (which holds '<', with
// at least one more byte in the window) entirely in place. complete=false
// with a nil error means the window ended before the tag did.
func (s *Scanner) tryStartTag() (ev Event, ok, complete bool, err error) {
	b := s.buf[:s.end]
	i := s.pos + 1
	c := b[i]
	if !isNameStart(c) {
		return Event{}, false, false, fmt.Errorf("xmlstream: invalid character %q at start of tag name", c)
	}
	nameStart := i
	i++
	for i < len(b) && nameByteTab[b[i]] {
		i++
	}
	if max := s.limits.MaxTokenBytes; max > 0 && i-nameStart > max {
		return Event{}, false, false, s.tokenTooLarge("tag name")
	}
	if i >= len(b) {
		return Event{}, false, false, nil
	}
	tag := b[nameStart:i]
	var name string
	var sym Sym
	var attrs []Attr
	selfClose := false
	switch c = b[i]; {
	case c == '>':
		name, sym = s.intern(tag)
		i++
	case c == '/':
		// The seed engine's expect('>') skips whitespace between '/' and '>'.
		j := i + 1
		for j < len(b) && isSpace(b[j]) {
			j++
		}
		if j >= len(b) {
			return Event{}, false, false, nil
		}
		if b[j] != '>' {
			return Event{}, false, false, fmt.Errorf("xmlstream: unexpected character %q, want %q", b[j], byte('>'))
		}
		name, sym = s.intern(tag)
		i = j + 1
		selfClose = true
	case isSpace(c):
		if !s.emitAttrs {
			end, sc, done := trySkipAttrsIn(b, i+1)
			if !done {
				return Event{}, false, false, nil
			}
			name, sym = s.intern(tag)
			i, selfClose = end, sc
		} else {
			end, sc, done, aerr := s.tryAttrs(b, tag, i+1)
			if aerr != nil {
				return Event{}, false, false, aerr
			}
			if !done {
				return Event{}, false, false, nil
			}
			attrs = s.takeAttrsArena()
			name, sym = s.intern(tag)
			i, selfClose = end, sc
		}
	default:
		return Event{}, false, false, fmt.Errorf("xmlstream: invalid character %q in tag name %q", c, tag)
	}
	s.pos = i
	s.state = scanInDocument
	if selfClose {
		s.pending = append(s.pending, Event{Kind: EndElement, Sym: sym, Name: name})
		if len(s.stack) == 0 && !s.fragment {
			s.state = scanAfterRoot
		}
	} else {
		s.stack = append(s.stack, name)
		s.stackSyms = append(s.stackSyms, sym)
	}
	return Event{Kind: StartElement, Sym: sym, Name: name, Attrs: attrs}, true, true, nil
}

// tryAttrs tokenizes the attribute list of <tag ...> within the window,
// filling s.attrBuf. complete=false with nil error means the window ended
// before the tag did.
func (s *Scanner) tryAttrs(b, tag []byte, i int) (end int, selfClose, complete bool, err error) {
	s.attrBuf = s.attrBuf[:0]
	max := s.limits.MaxTokenBytes
	for {
		for i < len(b) && isSpace(b[i]) {
			i++
		}
		if i >= len(b) {
			return 0, false, false, nil
		}
		switch c := b[i]; {
		case c == '>':
			return i + 1, false, true, nil
		case c == '/':
			j := i + 1
			for j < len(b) && isSpace(b[j]) {
				j++
			}
			if j >= len(b) {
				return 0, false, false, nil
			}
			if b[j] != '>' {
				return 0, false, false, fmt.Errorf("xmlstream: unexpected character %q, want %q", b[j], byte('>'))
			}
			return j + 1, true, true, nil
		case !isNameStart(c):
			return 0, false, false, fmt.Errorf("xmlstream: invalid character %q in attribute list of <%s>", c, tag)
		}
		ns := i
		i++
		for i < len(b) && nameByteTab[b[i]] {
			i++
		}
		if max > 0 && i-ns > max {
			return 0, false, false, s.tokenTooLarge("attribute name")
		}
		if i >= len(b) {
			return 0, false, false, nil
		}
		aname, asym := s.intern(b[ns:i])
		for i < len(b) && isSpace(b[i]) {
			i++
		}
		if i >= len(b) {
			return 0, false, false, nil
		}
		if b[i] != '=' {
			return 0, false, false, fmt.Errorf("xmlstream: unexpected character %q, want %q", b[i], byte('='))
		}
		i++
		for i < len(b) && isSpace(b[i]) {
			i++
		}
		if i >= len(b) {
			return 0, false, false, nil
		}
		q := b[i]
		if q != '"' && q != '\'' {
			return 0, false, false, fmt.Errorf("xmlstream: unquoted value for attribute %q in <%s>", aname, tag)
		}
		i++
		vlen := bytes.IndexByte(b[i:], q)
		if vlen < 0 {
			return 0, false, false, nil
		}
		raw := b[i : i+vlen]
		i += vlen + 1
		if max > 0 && len(raw) > max {
			return 0, false, false, s.tokenTooLarge("attribute value")
		}
		// Well-formedness: a raw '<' cannot appear in an attribute value (it
		// must be written &lt;); entity-produced '<' passes.
		if bytes.IndexByte(raw, '<') >= 0 {
			return 0, false, false, fmt.Errorf("xmlstream: raw '<' in value of attribute %q in <%s>", aname, tag)
		}
		val := s.valueString(raw)
		for _, a := range s.attrBuf {
			if a.Name == aname {
				return 0, false, false, duplicateAttrf(aname, tag)
			}
		}
		s.attrBuf = append(s.attrBuf, Attr{Name: aname, Sym: asym, Value: val})
	}
}

// takeAttrsArena copies the scratch attribute list into an arena-backed
// slice: events outlive the scan step, so they cannot alias the scratch.
func (s *Scanner) takeAttrsArena() []Attr {
	if len(s.attrBuf) == 0 {
		return nil
	}
	out := s.attrs.take(len(s.attrBuf))
	copy(out, s.attrBuf)
	return out
}

// trySkipAttrsIn consumes attribute text until '>' or '/>' within the window,
// honouring quoted values, with the seed engine's skipAttributes semantics
// (self-closing iff the byte immediately before '>' is '/').
func trySkipAttrsIn(b []byte, i int) (end int, selfClose, complete bool) {
	prev := byte(0)
	for i < len(b) {
		switch c := b[i]; c {
		case '"', '\'':
			j := bytes.IndexByte(b[i+1:], c)
			if j < 0 {
				return 0, false, false
			}
			i += j + 2
			prev = c
		case '>':
			return i + 1, prev == '/', true
		default:
			prev = c
			i++
		}
	}
	return 0, false, false
}

// fastEndTag parses an end tag wholly within the window, with the same
// refill-then-fallback discipline as fastStartTag.
func (s *Scanner) fastEndTag() (Event, bool, error) {
	for {
		ev, ok, complete, err := s.tryEndTag()
		if err != nil || complete {
			return ev, ok, err
		}
		avail := s.end - s.pos
		if s.fill() && s.end-s.pos > avail {
			continue
		}
		s.pos += 2 // consume "</" exactly as scan would
		return s.scanEndTag()
	}
}

// tryEndTag attempts to parse the end tag at s.pos (which holds '<' followed
// by '/') entirely in place.
func (s *Scanner) tryEndTag() (ev Event, ok, complete bool, err error) {
	b := s.buf[:s.end]
	i := s.pos + 2
	ns := i
	for i < len(b) && nameByteTab[b[i]] {
		i++
	}
	if max := s.limits.MaxTokenBytes; max > 0 && i-ns > max {
		return Event{}, false, false, s.tokenTooLarge("tag name")
	}
	if i >= len(b) {
		return Event{}, false, false, nil
	}
	j := i
	for j < len(b) && isSpace(b[j]) {
		j++
	}
	if j >= len(b) {
		return Event{}, false, false, nil
	}
	if b[j] != '>' {
		if j == i {
			return Event{}, false, false, fmt.Errorf("xmlstream: invalid character %q in end tag", b[j])
		}
		return Event{}, false, false, fmt.Errorf("xmlstream: unexpected character %q, want %q", b[j], byte('>'))
	}
	ev, ok, err = s.commitEndTag(b[ns:i], j+1)
	return ev, ok, true, err
}

// commitEndTag checks the end tag's name against the open-element stack and
// delivers the end event, consuming input up to end. In fragment mode an end
// tag with an empty local stack closes an element opened in an earlier chunk:
// it is emitted as-is and the stitcher checks it against the global stack.
func (s *Scanner) commitEndTag(name []byte, end int) (Event, bool, error) {
	if len(s.stack) == 0 {
		if s.fragment {
			nm, sym := s.intern(name)
			s.underflow++
			s.pos = end
			return Event{Kind: EndElement, Sym: sym, Name: nm}, true, nil
		}
		return Event{}, false, fmt.Errorf("xmlstream: unexpected end tag </%s> with no open element", name)
	}
	open := s.stack[len(s.stack)-1]
	if open != string(name) { // no allocation: string compare on []byte
		return Event{}, false, fmt.Errorf("xmlstream: mismatched end tag: </%s> closes <%s>", name, open)
	}
	sym := s.stackSyms[len(s.stackSyms)-1]
	s.stack = s.stack[:len(s.stack)-1]
	s.stackSyms = s.stackSyms[:len(s.stackSyms)-1]
	if len(s.stack) == 0 && !s.fragment {
		s.state = scanAfterRoot
	}
	s.pos = end
	return Event{Kind: EndElement, Sym: sym, Name: open}, true, nil
}
