package xmlstream

import (
	"io"
	"os"
)

// Doc is a whole document held in memory for the zero-copy and parallel scan
// paths, memory-mapped when the platform supports it and read outright
// otherwise. Close unmaps/releases the bytes; no Scanner over the document
// may be used afterwards.
type Doc struct {
	data   []byte
	mapped bool
}

// OpenFile opens path for scanning. On platforms with mmap support the file
// is mapped read-only, so scanning touches pages straight from the page
// cache with no read syscalls and no copy; elsewhere (or if mapping fails)
// the file is read into memory.
func OpenFile(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if size := st.Size(); size > 0 && st.Mode().IsRegular() && int64(int(size)) == size {
		if data, merr := mmapFile(f, int(size)); merr == nil {
			return &Doc{data: data, mapped: true}, nil
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return &Doc{data: data}, nil
}

// Data returns the document bytes. The slice is valid until Close; it must
// not be mutated.
func (d *Doc) Data() []byte { return d.data }

// Len returns the document size in bytes.
func (d *Doc) Len() int { return len(d.data) }

// Mapped reports whether the document is memory-mapped rather than heap-held.
func (d *Doc) Mapped() bool { return d.mapped }

// Close releases the document bytes. Any Scanner or ParallelScanner still
// reading them must be done first.
func (d *Doc) Close() error {
	data, mapped := d.data, d.mapped
	d.data, d.mapped = nil, false
	if mapped {
		return munmapFile(data)
	}
	return nil
}
