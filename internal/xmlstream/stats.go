package xmlstream

import "io"

// Info summarizes a stream: the statistics the paper reports for each of its
// evaluation documents (number of elements, maximum depth) plus event count.
type Info struct {
	Elements int64 // number of elements (start messages)
	MaxDepth int   // maximum element nesting depth
	Events   int64 // total events including text
}

// Measure drains src and returns its statistics.
func Measure(src Source) (Info, error) {
	var info Info
	depth := 0
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return info, nil
		}
		if err != nil {
			return info, err
		}
		info.Events++
		switch ev.Kind {
		case StartElement:
			info.Elements++
			depth++
			if depth > info.MaxDepth {
				info.MaxDepth = depth
			}
		case EndElement:
			depth--
		}
	}
}

// CountingSource wraps a Source and tracks Info as events flow through,
// without a separate measurement pass.
type CountingSource struct {
	Src   Source
	Info  Info
	depth int
}

// Next implements Source.
func (c *CountingSource) Next() (Event, error) {
	ev, err := c.Src.Next()
	if err != nil {
		return ev, err
	}
	c.Info.Events++
	switch ev.Kind {
	case StartElement:
		c.Info.Elements++
		c.depth++
		if c.depth > c.Info.MaxDepth {
			c.Info.MaxDepth = c.depth
		}
	case EndElement:
		c.depth--
	}
	return ev, nil
}
