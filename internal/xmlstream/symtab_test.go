package xmlstream

import (
	"fmt"
	"sync"
	"testing"
)

func TestSymtabInternDense(t *testing.T) {
	st := NewSymtab()
	if st.Len() != 0 {
		t.Fatalf("new table has %d entries", st.Len())
	}
	a := st.Intern("a")
	b := st.Intern("b")
	if a != 1 || b != 2 {
		t.Fatalf("symbols not dense from 1: a=%d b=%d", a, b)
	}
	if again := st.Intern("a"); again != a {
		t.Fatalf("re-intern changed symbol: %d != %d", again, a)
	}
	if st.Len() != 2 {
		t.Fatalf("Len=%d, want 2", st.Len())
	}
	if got := st.Name(a); got != "a" {
		t.Fatalf("Name(%d)=%q", a, got)
	}
	if got := st.Name(0); got != "" {
		t.Fatalf("Name(0)=%q, want empty", got)
	}
	if got := st.Name(99); got != "" {
		t.Fatalf("Name(99)=%q, want empty", got)
	}
	hits, misses := st.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestSymtabLookupDoesNotInsert(t *testing.T) {
	st := NewSymtab()
	if _, ok := st.Lookup("ghost"); ok {
		t.Fatal("Lookup invented a symbol")
	}
	if st.Len() != 0 {
		t.Fatal("Lookup inserted")
	}
	hits, misses := st.Stats()
	if hits != 0 || misses != 0 {
		t.Fatalf("Lookup moved the counters: hits=%d misses=%d", hits, misses)
	}
	sym := st.Intern("real")
	if got, ok := st.Lookup("real"); !ok || got != sym {
		t.Fatalf("Lookup(real)=%d,%v want %d,true", got, ok, sym)
	}
}

// TestSymtabConcurrent hammers one table from concurrent writers with
// overlapping label sets and checks every goroutine resolved every label to
// the same symbol. Run under -race this validates the copy-on-write
// publication protocol.
func TestSymtabConcurrent(t *testing.T) {
	st := NewSymtab()
	const goroutines = 8
	const labels = 200
	results := make([][]Sym, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]Sym, labels)
			for i := 0; i < labels; i++ {
				out[i] = st.Intern(fmt.Sprintf("label-%d", i))
			}
			results[g] = out
		}()
	}
	wg.Wait()
	for i := 0; i < labels; i++ {
		want := results[0][i]
		for g := 1; g < goroutines; g++ {
			if results[g][i] != want {
				t.Fatalf("label %d: goroutine %d got %d, goroutine 0 got %d",
					i, g, results[g][i], want)
			}
		}
		if name := st.Name(want); name != fmt.Sprintf("label-%d", i) {
			t.Fatalf("Name(%d)=%q", want, name)
		}
	}
	if st.Len() != labels {
		t.Fatalf("Len=%d, want %d", st.Len(), labels)
	}
}
