package xmlstream

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// repeatReader streams one byte forever — the shape of an attacker feeding
// an unbounded token. Tests bound it with io.LimitReader only as a safety
// net far above the cap under test: a correct scanner errors long before.
type repeatReader struct{ c byte }

func (r repeatReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.c
	}
	return len(p), nil
}

// drain pulls events until the scanner errors or the document ends.
func drain(s *Scanner) error {
	for {
		if _, err := s.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

func TestScannerOversizedTagName(t *testing.T) {
	// The tag name never ends; the scanner must fail at the cap instead of
	// buffering without bound.
	r := io.MultiReader(strings.NewReader("<"), io.LimitReader(repeatReader{'a'}, 1<<20))
	s := NewScanner(r, WithLimits(Limits{MaxTokenBytes: 1024}))
	err := drain(s)
	if !errors.Is(err, ErrTokenTooLarge) {
		t.Fatalf("error %v does not match ErrTokenTooLarge", err)
	}
	var le *ScanLimitError
	if !errors.As(err, &le) || le.What != "tag name" || le.Limit != 1024 {
		t.Fatalf("error %v is not the tag-name ScanLimitError", err)
	}
}

func TestScannerOversizedText(t *testing.T) {
	r := io.MultiReader(strings.NewReader("<a>"), io.LimitReader(repeatReader{'x'}, 1<<24))
	s := NewScanner(r, WithLimits(Limits{MaxTokenBytes: 1 << 16}))
	err := drain(s)
	if !errors.Is(err, ErrTokenTooLarge) {
		t.Fatalf("error %v does not match ErrTokenTooLarge", err)
	}
}

func TestScannerOversizedTextWithinDocument(t *testing.T) {
	// A bounded but over-cap text run between tags must also trip, even
	// though the run ends in a '<'.
	doc := "<a>" + strings.Repeat("x", 2048) + "</a>"
	s := NewScanner(strings.NewReader(doc), WithLimits(Limits{MaxTokenBytes: 1024}))
	if err := drain(s); !errors.Is(err, ErrTokenTooLarge) {
		t.Fatalf("error %v does not match ErrTokenTooLarge", err)
	}
}

func TestScannerOversizedCDATA(t *testing.T) {
	r := io.MultiReader(strings.NewReader("<a><![CDATA["), io.LimitReader(repeatReader{'x'}, 1<<20))
	s := NewScanner(r, WithLimits(Limits{MaxTokenBytes: 1024}))
	err := drain(s)
	if !errors.Is(err, ErrTokenTooLarge) {
		t.Fatalf("error %v does not match ErrTokenTooLarge", err)
	}
}

func TestScannerTooDeep(t *testing.T) {
	r := io.MultiReader(strings.NewReader(strings.Repeat("<a>", 64)), strings.NewReader(strings.Repeat("</a>", 64)))
	s := NewScanner(r, WithLimits(Limits{MaxDepth: 16}))
	err := drain(s)
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("error %v does not match ErrTooDeep", err)
	}
	var le *ScanLimitError
	if !errors.As(err, &le) || le.Limit != 16 {
		t.Fatalf("error %v is not the depth ScanLimitError", err)
	}
}

func TestScannerDeepDocumentWithinDefaultLimit(t *testing.T) {
	// Depth 10k — the adversarial corpus's deepest shape — passes under the
	// default caps.
	const depth = 10_000
	doc := strings.Repeat("<a>", depth) + strings.Repeat("</a>", depth)
	s := NewScanner(strings.NewReader(doc))
	if err := drain(s); err != nil {
		t.Fatalf("depth-%d document under default limits: %v", depth, err)
	}
	if s.MaxDepth() != depth {
		t.Fatalf("MaxDepth = %d, want %d", s.MaxDepth(), depth)
	}
}

func TestScannerUnlimitedOptOut(t *testing.T) {
	doc := "<" + strings.Repeat("a", 4096) + "/>"
	s := NewScanner(strings.NewReader(doc), WithLimits(Limits{MaxTokenBytes: -1, MaxDepth: -1}))
	if err := drain(s); err != nil {
		t.Fatalf("negative limits should disable the caps: %v", err)
	}
}

func TestScannerTruncatedInputsAreTyped(t *testing.T) {
	cases := []string{
		"<a>",           // unclosed element
		"<a",            // cut inside a start tag
		"<a><b",         // cut inside a nested start tag
		"<a></a",        // cut inside an end tag
		"<!-- comment",  // unterminated comment
		"<?pi data",     // unterminated processing instruction
		"<a><![CDATA[x", // unterminated CDATA section
		"<!DOCTYPE a [", // unterminated declaration
		"<a></",         // cut right after the end-tag opener
		"<a><b/></a><",  // cut inside markup after the root closed
	}
	for _, doc := range cases {
		s := NewScanner(strings.NewReader(doc))
		err := drain(s)
		if err == nil {
			t.Errorf("%q: no error, want ErrTruncated", doc)
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("%q: error %v does not match ErrTruncated", doc, err)
		}
	}
}
