package xmlstream_test

import (
	"bytes"
	"io"
	"os"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xmlstream"
)

// TestIngestZeroAlloc is the ingest-path CI gate, the scanner-level sibling
// of TestCountModeZeroAlloc: once the scanner is warm, rescanning a document
// performs zero heap allocations per event, in every configuration — the
// count-mode structural scan (the paper's model), the full-fidelity scan
// with text and attributes (arena-backed payloads), and the in-memory
// ScanBytes path. Reset recycles the arenas, so steady-state ingest cost is
// pure CPU; a regression that re-introduces per-event allocation fails
// go test ./..., not just bench review.
func TestIngestZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		opts []xmlstream.ScannerOption
	}{
		// The acceptance workload: DMOZ structure in count mode.
		{"dmoz-count", dataset.DMOZStructure(0.01).Bytes(), []xmlstream.ScannerOption{
			xmlstream.WithText(false), xmlstream.WithAttributes(false)}},
		// Text-heavy content with full text fidelity (arena strings).
		{"dmoz-content-text", dataset.DMOZContent(0.003).Bytes(), nil},
		// Attribute-heavy corpus (attr arena + value cache).
		{"tickets-attrs", dataset.Tickets(0.01).Bytes(), nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]xmlstream.ScannerOption{xmlstream.WithSymtab(xmlstream.NewSymtab())}, tc.opts...)

			rd := bytes.NewReader(tc.data)
			sc := xmlstream.NewScanner(rd, opts...)
			drain := func() {
				rd.Reset(tc.data)
				sc.Reset(rd)
				for {
					if _, err := sc.Next(); err != nil {
						if err == io.EOF {
							return
						}
						t.Fatal(err)
					}
				}
			}
			drain() // warm: grow buffers, arenas, interner to steady state
			if allocs := testing.AllocsPerRun(5, drain); allocs != 0 {
				t.Errorf("buffered scan steady state allocates: %.1f allocs per document, want 0", allocs)
			}

			sb := xmlstream.ScanBytes(tc.data, opts...)
			drainBytes := func() {
				sb.ResetBytes(tc.data)
				for {
					if _, err := sb.Next(); err != nil {
						if err == io.EOF {
							return
						}
						t.Fatal(err)
					}
				}
			}
			drainBytes()
			if allocs := testing.AllocsPerRun(5, drainBytes); allocs != 0 {
				t.Errorf("ScanBytes steady state allocates: %.1f allocs per document, want 0", allocs)
			}
			if sc.Events() == 0 || sb.Events() == 0 {
				t.Fatal("zero-alloc run saw no events; workload broken")
			}
		})
	}
}

// TestScannerAccountingParity pins the offset accounting to ground truth on
// a document small enough to audit by hand, in every mode (the satellite-4
// regression: the counters must not assume the byte-at-a-time path). The
// differential harness then extends the parity claim to the whole corpus.
func TestScannerAccountingParity(t *testing.T) {
	doc := []byte(`<r>ab<c/></r>`)
	//             0123456789012
	wantOffs := []int64{0, 3, 5, 9, 9, 13, 13} // per-event InputOffset
	wantKinds := []xmlstream.Kind{
		xmlstream.StartDocument, xmlstream.StartElement, xmlstream.Text,
		xmlstream.StartElement, xmlstream.EndElement, xmlstream.EndElement,
		xmlstream.EndDocument,
	}
	check := func(name string, src scanSource) {
		t.Helper()
		out := runScan(src)
		if out.err != nil {
			t.Fatalf("%s: %v", name, out.err)
		}
		if len(out.events) != len(wantOffs) {
			t.Fatalf("%s: %d events, want %d", name, len(out.events), len(wantOffs))
		}
		for i := range out.events {
			if out.events[i].Kind != wantKinds[i] {
				t.Fatalf("%s: event %d kind %v, want %v", name, i, out.events[i].Kind, wantKinds[i])
			}
			if out.offs[i] != wantOffs[i] {
				t.Fatalf("%s: event %d InputOffset %d, want %d", name, i, out.offs[i], wantOffs[i])
			}
		}
		if out.total != int64(len(wantOffs)) || out.maxDepth != 2 {
			t.Fatalf("%s: Events/MaxDepth %d/%d, want %d/2", name, out.total, out.maxDepth, len(wantOffs))
		}
	}
	check("seed", xmlstream.NewScanner(bytes.NewReader(doc), xmlstream.WithSeedScan(true)))
	check("fast", xmlstream.NewScanner(bytes.NewReader(doc)))
	check("fast-chunk1", xmlstream.NewScanner(&chunkReader{data: doc, n: 1}))
	check("bytes", xmlstream.ScanBytes(doc))
	check("parallel", xmlstream.NewParallelScannerAt(doc, []int{5, 9}))

	// Error offsets: the construct start, identically in every mode.
	bad := []byte(`<r>xx<a k="1" k="2"/></r>`)
	//             0123456789...   construct starts at offset 5
	for name, src := range map[string]scanSource{
		"seed":     xmlstream.NewScanner(bytes.NewReader(bad), xmlstream.WithSeedScan(true)),
		"fast":     xmlstream.NewScanner(bytes.NewReader(bad)),
		"bytes":    xmlstream.ScanBytes(bad),
		"parallel": xmlstream.NewParallelScannerAt(bad, []int{5}),
	} {
		out := runScan(src)
		if out.err == nil {
			t.Fatalf("%s: duplicate attribute accepted", name)
		}
		if out.errOff != 5 {
			t.Fatalf("%s: ErrorOffset %d, want 5 (err %v)", name, out.errOff, out.err)
		}
	}
}

// TestIngestStats sanity-checks the arena accounting surfaced to obs: a
// buffered text-and-attribute scan carves payload from the arenas, a
// caller-owned-bytes scan serves payloads as views and leaves the text arena
// empty (the zero-copy claim, pinned here), and the parallel scanner reports
// its chunk count.
func TestIngestStats(t *testing.T) {
	data := dataset.Tickets(0.02).Bytes()
	sc := xmlstream.NewScanner(bytes.NewReader(data))
	if _, err := xmlstream.Collect(sc); err != nil {
		t.Fatal(err)
	}
	st := sc.IngestStats()
	if st.ArenaBytes == 0 || st.ArenaBlocks == 0 || st.ArenaAttrs == 0 {
		t.Fatalf("buffered arena accounting empty: %+v", st)
	}
	if st.Chunks != 1 {
		t.Fatalf("buffered scanner Chunks = %d, want 1", st.Chunks)
	}

	sb := xmlstream.ScanBytes(data)
	if _, err := xmlstream.Collect(sb); err != nil {
		t.Fatal(err)
	}
	bst := sb.IngestStats()
	if bst.ArenaBytes != 0 {
		t.Fatalf("stable scan copied payloads into the text arena: %+v", bst)
	}
	if bst.ArenaAttrs == 0 {
		t.Fatalf("stable scan attr-arena accounting empty: %+v", bst)
	}

	ps := xmlstream.NewParallelScannerAt(data, []int{len(data) / 3, 2 * len(data) / 3})
	out := runScan(ps)
	if out.err != nil {
		t.Fatal(out.err)
	}
	pst := ps.IngestStats()
	if pst.Chunks < 2 {
		t.Fatalf("parallel scanner Chunks = %d, want >= 2", pst.Chunks)
	}
	if pst.ArenaAttrs == 0 {
		t.Fatalf("parallel attr-arena accounting empty: %+v", pst)
	}
}

// TestOpenFile exercises the mmap fast path end to end: a file-backed
// document scans to the same events as its in-memory bytes.
func TestOpenFile(t *testing.T) {
	data := dataset.Mondial(0.01).Bytes()
	path := t.TempDir() + "/doc.xml"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := xmlstream.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer doc.Close()
	if doc.Len() != len(data) {
		t.Fatalf("OpenFile length %d, want %d", doc.Len(), len(data))
	}
	want := runScan(xmlstream.NewScanner(bytes.NewReader(data), seedOpts(nil)...))
	got := runScan(xmlstream.ScanBytes(doc.Data(), freshOpts(nil)...))
	compareSerial(t, "mmap", want, got)
	pgot := runScan(xmlstream.NewParallelScanner(doc.Data(), 4, freshOpts(nil)...))
	compareParallel(t, "mmap-parallel", want, pgot)
}
