package xmlstream

import (
	"sync"
	"sync/atomic"
)

// Sym is a dense integer identity for an element label. Symbols are assigned
// by a Symtab in first-seen order starting at 1; the zero Sym means "not
// resolved against any table". A Sym is only meaningful relative to the
// Symtab that issued it: comparing symbols from different tables is a bug,
// which is why the engine resolves events against the network's own table
// whenever an event arrives with Sym zero.
type Sym int32

// symSnapshot is the immutable state of a Symtab: lookups read one snapshot
// pointer and never see a map mid-update. names[sym-1] is the canonical
// string of sym.
type symSnapshot struct {
	byName map[string]Sym
	names  []string
}

var emptySnapshot = &symSnapshot{byName: map[string]Sym{}}

// Symtab interns element labels into dense Syms. It is read-mostly: the hot
// path (a label already seen) is one atomic snapshot load plus one map
// lookup, with no locking and no allocation; inserting a new label copies
// the table under a mutex, which is fine because a document's distinct
// labels are few and appear early.
//
// A Symtab is safe for concurrent use by any number of readers and writers:
// scanners, network builders and evaluation goroutines may share one table.
type Symtab struct {
	mu   sync.Mutex
	snap atomic.Pointer[symSnapshot]

	hits   atomic.Int64
	misses atomic.Int64
}

// NewSymtab returns an empty symbol table.
func NewSymtab() *Symtab {
	t := &Symtab{}
	t.snap.Store(emptySnapshot)
	return t
}

// Intern returns the symbol for name, assigning the next dense Sym on first
// sight. Already-seen names take the lock-free fast path.
func (t *Symtab) Intern(name string) Sym {
	if sym, ok := t.snap.Load().byName[name]; ok {
		t.hits.Add(1)
		return sym
	}
	return t.insert(name)
}

// internBytes is Intern over the scanner's name buffer: the map lookup on a
// []byte key compiles to a no-allocation access, and the canonical string is
// returned alongside so callers never re-intern the bytes. Only a miss
// allocates (the one string the table keeps).
func (t *Symtab) internBytes(b []byte) (Sym, string) {
	snap := t.snap.Load()
	if sym, ok := snap.byName[string(b)]; ok { // no allocation: map lookup on []byte key
		t.hits.Add(1)
		return sym, snap.names[sym-1]
	}
	sym := t.insert(string(b))
	return sym, t.Name(sym)
}

// insert adds name under the writer lock with copy-on-write: readers keep
// using the previous snapshot until the new one is published atomically.
func (t *Symtab) insert(name string) Sym {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.snap.Load()
	if sym, ok := old.byName[name]; ok { // lost a race to another writer
		t.hits.Add(1)
		return sym
	}
	t.misses.Add(1)
	next := &symSnapshot{
		byName: make(map[string]Sym, len(old.byName)+1),
		names:  make([]string, len(old.names), len(old.names)+1),
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	copy(next.names, old.names)
	sym := Sym(len(next.names) + 1)
	next.byName[name] = sym
	next.names = append(next.names, name)
	t.snap.Store(next)
	return sym
}

// Lookup returns the symbol for name without inserting; ok is false when the
// name was never interned. Lookup does not touch the hit/miss counters, so
// probing (e.g. a query label that may not occur in any document) does not
// skew the hit rate.
func (t *Symtab) Lookup(name string) (Sym, bool) {
	sym, ok := t.snap.Load().byName[name]
	return sym, ok
}

// Name returns the canonical string of sym, or "" for the zero Sym and
// symbols the table never issued.
func (t *Symtab) Name(sym Sym) string {
	snap := t.snap.Load()
	if sym < 1 || int(sym) > len(snap.names) {
		return ""
	}
	return snap.names[sym-1]
}

// Len returns the number of interned labels.
func (t *Symtab) Len() int {
	return len(t.snap.Load().names)
}

// Stats returns the cumulative hit and miss counts of Intern calls: the hit
// rate of a long-running table approaches one because a stream's distinct
// labels are bounded.
func (t *Symtab) Stats() (hits, misses int64) {
	return t.hits.Load(), t.misses.Load()
}
