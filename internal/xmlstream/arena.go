package xmlstream

import "unsafe"

// Arena allocation for the ingest hot path. The zero-copy scanner hands out
// Event.Data strings and Event.Attrs slices that outlive the scan step
// (candidates buffer them), so they cannot alias the read buffer. Instead of
// one heap allocation per message the scanner carves them out of per-stream
// arenas: append-only blocks filled front to back, amortizing the allocation
// cost to one block per ~64 KiB of event payload.
//
// Ownership rules (see DESIGN.md §15):
//
//   - While a stream is being scanned, a filled block is never rewritten:
//     strings carved from it stay valid for as long as anything references
//     them, exactly like an ordinary heap string. The scanner retires filled
//     blocks; the garbage collector reclaims a block once the last event
//     referencing it dies, so scanner memory stays bounded even on unbounded
//     streams.
//   - Reset recycles a bounded number of retired blocks for the next stream.
//     Calling Reset asserts that every event of the previous stream is dead;
//     this is what makes steady-state re-scanning allocation-free.
const (
	arenaBlockBytes = 64 << 10 // payload bytes per byte-arena block
	arenaBlockAttrs = 512      // Attr entries per attr-arena block
	arenaMaxRecycle = 16       // retired blocks kept for reuse across Reset
)

// byteArena carves strings for text runs and attribute values.
type byteArena struct {
	cur     []byte   // current block: len = used, cap = block size
	spare   [][]byte // recycled blocks ready for the next take
	retired [][]byte // blocks filled during the current stream (bounded)

	blocks int64 // lifetime block allocations
	bytes  int64 // lifetime payload bytes carved
}

// take returns n fresh bytes from the arena. The returned slice has full
// capacity n, so it cannot bleed into later carvings via append.
func (a *byteArena) take(n int) []byte {
	if cap(a.cur)-len(a.cur) < n {
		a.grow(n)
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	a.bytes += int64(n)
	return a.cur[off : off+n : off+n]
}

// str copies b into the arena and returns it as a string. The string aliases
// arena storage; the block stays alive for as long as the string does, and is
// only rewritten after a Reset (when the caller has asserted all previous
// events are dead) — the same write-once discipline strings.Builder relies on.
func (a *byteArena) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	dst := a.take(len(b))
	copy(dst, b)
	return unsafe.String(&dst[0], len(dst))
}

// grow retires the current block and installs one with room for n bytes.
func (a *byteArena) grow(n int) {
	if cap(a.cur) > 0 && len(a.retired) < arenaMaxRecycle {
		// Keep a bounded tail of filled blocks for recycling at Reset; blocks
		// beyond the cap are released to the events that reference them.
		a.retired = append(a.retired, a.cur)
	}
	if n <= arenaBlockBytes {
		if k := len(a.spare); k > 0 {
			a.cur = a.spare[k-1][:0]
			a.spare[k-1] = nil
			a.spare = a.spare[:k-1]
			return
		}
	}
	size := arenaBlockBytes
	if n > size {
		size = n // oversized token: a dedicated block, not recycled
	}
	a.cur = make([]byte, 0, size)
	a.blocks++
}

// reset recycles the stream's blocks for reuse. Only standard-size blocks are
// kept (oversized one-token blocks would pin high-water memory forever).
func (a *byteArena) reset() {
	for i, b := range a.retired {
		if len(a.spare) < arenaMaxRecycle && cap(b) == arenaBlockBytes {
			a.spare = append(a.spare, b[:0])
		}
		a.retired[i] = nil
	}
	a.retired = a.retired[:0]
	if cap(a.cur) == arenaBlockBytes {
		a.spare = append(a.spare, a.cur[:0])
	}
	a.cur = nil
}

// attrArena carves Event.Attrs slices.
type attrArena struct {
	cur     []Attr
	spare   [][]Attr
	retired [][]Attr

	blocks int64
	attrs  int64
}

// take returns a fresh n-entry attribute slice (full capacity n).
func (a *attrArena) take(n int) []Attr {
	if cap(a.cur)-len(a.cur) < n {
		a.grow(n)
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	a.attrs += int64(n)
	return a.cur[off : off+n : off+n]
}

func (a *attrArena) grow(n int) {
	if cap(a.cur) > 0 && len(a.retired) < arenaMaxRecycle {
		a.retired = append(a.retired, a.cur)
	}
	if n <= arenaBlockAttrs {
		if k := len(a.spare); k > 0 {
			a.cur = a.spare[k-1][:0]
			a.spare[k-1] = nil
			a.spare = a.spare[:k-1]
			return
		}
	}
	size := arenaBlockAttrs
	if n > size {
		size = n
	}
	a.cur = make([]Attr, 0, size)
	a.blocks++
}

func (a *attrArena) reset() {
	for i, b := range a.retired {
		if len(a.spare) < arenaMaxRecycle && cap(b) == arenaBlockAttrs {
			// Attr entries hold strings; clear them so recycled blocks do not
			// pin the previous stream's values until they are overwritten.
			bb := b[:cap(b)]
			for j := range bb {
				bb[j] = Attr{}
			}
			a.spare = append(a.spare, b[:0])
		}
		a.retired[i] = nil
	}
	a.retired = a.retired[:0]
	if cap(a.cur) == arenaBlockAttrs {
		bb := a.cur[:cap(a.cur)]
		for j := range bb {
			bb[j] = Attr{}
		}
		a.spare = append(a.spare, a.cur[:0])
	}
	a.cur = nil
}

// IngestStats reports the ingest path's buffer economy for observability:
// arena block/byte totals and the scanner's read-buffer size. Chunks is the
// number of concurrently scanned chunks (1 for a serial scanner).
type IngestStats struct {
	ArenaBytes  int64 // payload bytes carved from arenas (text + attr values)
	ArenaBlocks int64 // arena blocks allocated over the scanner's lifetime
	ArenaAttrs  int64 // attribute entries carved from the attr arena
	BufferBytes int64 // read-buffer bytes owned by the scanner
	Chunks      int64 // concurrently scanned chunks (parallel mode)
}

// IngestStats returns the scanner's buffer/arena accounting.
func (s *Scanner) IngestStats() IngestStats {
	st := IngestStats{
		ArenaBytes:  s.text.bytes,
		ArenaBlocks: s.text.blocks + s.attrs.blocks,
		ArenaAttrs:  s.attrs.attrs,
		Chunks:      1,
	}
	if s.ownBuf != nil {
		st.BufferBytes = int64(len(s.ownBuf))
	}
	return st
}
