//go:build linux

package xmlstream

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
