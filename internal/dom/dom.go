// Package dom provides the in-memory document tree the baseline evaluators
// build before querying — the defining cost of the processors the paper
// compares SPEX against (§VI: Saxon and Fxgrep "construct in-memory
// representations of the streams"). SPEX itself never uses this package.
package dom

import (
	"fmt"
	"io"

	"repro/internal/xmlstream"
)

// Kind classifies a node.
type Kind uint8

// Node kinds.
const (
	Document Kind = iota
	Element
	TextNode
)

// Node is one node of the materialized document tree.
type Node struct {
	Kind     Kind
	Name     string // element label; "$" for the document node
	Data     string // character data (TextNode)
	Index    int64  // document-order index: document=0, elements from 1; -1 for text
	Parent   *Node
	Children []*Node
	Attrs    []xmlstream.Attr // element attributes, in document order
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Build materializes the whole stream into a tree and returns the document
// node. Memory is linear in the stream size — the point the paper's
// evaluation makes against this processor class.
func Build(src xmlstream.Source) (*Node, error) {
	doc := &Node{Kind: Document, Name: "$", Index: 0}
	cur := doc
	var next int64 = 1
	started := false
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case xmlstream.StartDocument:
			started = true
		case xmlstream.StartElement:
			n := &Node{Kind: Element, Name: ev.Name, Index: next, Parent: cur, Attrs: ev.Attrs}
			next++
			cur.Children = append(cur.Children, n)
			cur = n
		case xmlstream.EndElement:
			if cur.Parent == nil {
				return nil, fmt.Errorf("dom: unbalanced end element </%s>", ev.Name)
			}
			cur = cur.Parent
		case xmlstream.EndDocument:
			if cur != doc {
				return nil, fmt.Errorf("dom: end of document with open element <%s>", cur.Name)
			}
		case xmlstream.Text:
			cur.Children = append(cur.Children, &Node{Kind: TextNode, Data: ev.Data, Index: -1, Parent: cur})
		}
	}
	if !started {
		return nil, fmt.Errorf("dom: empty stream")
	}
	if cur != doc {
		return nil, fmt.Errorf("dom: stream ended with open element <%s>", cur.Name)
	}
	return doc, nil
}

// BuildString parses an XML string; a convenience for tests.
func BuildString(s string) (*Node, error) {
	return Build(xmlstream.NewScanner(stringReader(s)))
}

type sreader struct {
	s   string
	pos int
}

func stringReader(s string) *sreader { return &sreader{s: s} }

func (r *sreader) Read(p []byte) (int, error) {
	if r.pos >= len(r.s) {
		return 0, io.EOF
	}
	n := copy(p, r.s[r.pos:])
	r.pos += n
	return n, nil
}

// ElementChildren calls fn for each element child in document order.
func (n *Node) ElementChildren(fn func(*Node)) {
	for _, c := range n.Children {
		if c.Kind == Element {
			fn(c)
		}
	}
}

// Walk visits n and all descendants in document order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Count returns the number of element nodes in the subtree (excluding the
// document node itself).
func (n *Node) Count() int64 {
	var count int64
	n.Walk(func(m *Node) {
		if m.Kind == Element {
			count++
		}
	})
	return count
}

// Depth returns the maximum element nesting depth of the subtree.
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if c.Kind != Element {
			continue
		}
		if d := c.Depth() + 1; d > max {
			max = d
		}
	}
	return max
}

// Events serializes the subtree rooted at n back into stream events. For
// the document node this reproduces the whole stream (without the <$>
// brackets, matching what the output transducer buffers for a candidate).
func (n *Node) Events() []xmlstream.Event {
	var out []xmlstream.Event
	var walk func(*Node)
	walk = func(m *Node) {
		switch m.Kind {
		case Element:
			out = append(out, xmlstream.StartAttrs(m.Name, m.Attrs...))
			for _, c := range m.Children {
				walk(c)
			}
			out = append(out, xmlstream.End(m.Name))
		case TextNode:
			out = append(out, xmlstream.Chars(m.Data))
		case Document:
			for _, c := range m.Children {
				walk(c)
			}
		}
	}
	walk(n)
	return out
}
