package dom

import (
	"testing"

	"repro/internal/xmlstream"
)

func TestBuildIndexing(t *testing.T) {
	doc, err := BuildString(`<a><a><c/></a><b/><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Kind != Document || doc.Index != 0 || doc.Name != "$" {
		t.Fatalf("document node: %+v", doc)
	}
	var names []string
	var indices []int64
	doc.Walk(func(n *Node) {
		if n.Kind == Element {
			names = append(names, n.Name)
			indices = append(indices, n.Index)
		}
	})
	wantNames := []string{"a", "a", "c", "b", "c"}
	for i := range wantNames {
		if names[i] != wantNames[i] || indices[i] != int64(i+1) {
			t.Fatalf("walk: got %v %v", names, indices)
		}
	}
	if doc.Count() != 5 || doc.Depth() != 3 {
		t.Fatalf("Count=%d Depth=%d", doc.Count(), doc.Depth())
	}
}

func TestBuildText(t *testing.T) {
	doc, err := BuildString(`<a>hi<b>there</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Children[0]
	if len(root.Children) != 2 {
		t.Fatalf("children: %d", len(root.Children))
	}
	if root.Children[0].Kind != TextNode || root.Children[0].Data != "hi" {
		t.Fatalf("text child: %+v", root.Children[0])
	}
	if got := xmlstream.Serialize(doc.Events()); got != `<a>hi<b>there</b></a>` {
		t.Fatalf("serialize: %q", got)
	}
}

func TestBuildErrors(t *testing.T) {
	for _, bad := range []string{"", "<a>", "<a></b>"} {
		if _, err := BuildString(bad); err == nil {
			t.Errorf("BuildString(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestElementChildrenSkipsText(t *testing.T) {
	doc, err := BuildString(`<a>x<b/>y<c/>z</a>`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	doc.Children[0].ElementChildren(func(n *Node) { got = append(got, n.Name) })
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestEventsSubtree(t *testing.T) {
	doc, err := BuildString(`<a><b><c/></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Children[0].Children[0]
	if got := xmlstream.Serialize(b.Events()); got != "<b><c></c></b>" {
		t.Fatalf("got %q", got)
	}
}
