package spex

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// fig1Doc is the running example of the paper (Fig. 1):
// <$> <a> <a> <c> </c> </a> <b> </b> <c> </c> </a> </$>.
const fig1Doc = `<a><a><c/></a><b/><c/></a>`

// matchIndices evaluates q over doc and returns the answers' document-order
// indices.
func matchIndices(t *testing.T, q *Query, doc []byte, opts ...StreamOption) []int64 {
	t.Helper()
	var got []int64
	if _, err := q.Matches(strings.NewReader(string(doc)), func(m Match) {
		got = append(got, m.Index)
	}, opts...); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return got
}

// TestLimitedPrefixCrossValidation is the correctness contract of early
// termination: for every k, a limited evaluation returns exactly the first
// min(k, total) answers of the unlimited evaluation, in the same order — on
// the paper's Fig. 1 document and on the DMOZ structure stand-in, including
// future-condition qualifiers where an answer is only confirmed after the
// selected node has streamed past.
func TestLimitedPrefixCrossValidation(t *testing.T) {
	docs := []struct {
		name    string
		data    []byte
		queries []string
	}{
		{"fig1", []byte(fig1Doc), []string{
			"a._", "_*.c", "_+", "a[b].c", "a[b]._*.c", "_*[c]",
		}},
		{"dmoz", dataset.DMOZStructure(0.0005).Bytes(), []string{
			"_*.Topic.Title",
			"_*.Topic[editor].Title",     // future condition (class 2)
			"_*.Topic[editor].newsGroup", // past condition (class 4)
			"RDF.Topic[newsGroup][editor].link",
		}},
	}
	limits := []int64{1, 2, 3, 7, 100}
	for _, d := range docs {
		for _, expr := range d.queries {
			q := MustCompile(expr)
			full := matchIndices(t, q, d.data)
			for _, k := range limits {
				lim := matchIndices(t, q.Limited(k), d.data)
				want := full
				if int64(len(want)) > k {
					want = want[:k]
				}
				if len(lim) != len(want) {
					t.Fatalf("%s %s limit %d: %d answers, want %d", d.name, expr, k, len(lim), len(want))
				}
				for i := range want {
					if lim[i] != want[i] {
						t.Fatalf("%s %s limit %d: answer %d is node %d, want %d",
							d.name, expr, k, i, lim[i], want[i])
					}
				}
			}
			// WithLimit must behave identically to Limited, and override a
			// textual clause.
			withOpt := matchIndices(t, q, d.data, WithLimit(1))
			if len(full) > 0 && (len(withOpt) != 1 || withOpt[0] != full[0]) {
				t.Fatalf("%s %s WithLimit(1): got %v, want [%d]", d.name, expr, withOpt, full[0])
			}
		}
	}
}

// TestSetLimitedPrefixAllEngines cross-validates the three set engines on
// limited queries: each engine must deliver exactly the unlimited prefix per
// query, and Determined must report whether the whole set resolved early.
func TestSetLimitedPrefixAllEngines(t *testing.T) {
	data := dataset.DMOZStructure(0.0005).Bytes()
	exprs := []string{"_*.Topic.Title", "_*.Topic[editor].Title", "_*.Topic.link"}
	// Unlimited ground truth per query.
	fullCounts := make([]int64, len(exprs))
	for i, e := range exprs {
		c, err := MustCompile(e).Count(strings.NewReader(string(data)))
		if err != nil {
			t.Fatal(err)
		}
		fullCounts[i] = c
	}
	engines := []struct {
		name string
		opt  SetOption
	}{
		{"sequential", Sequential()},
		{"shared", Shared()},
		{"parallel", Parallel(2)},
	}
	const k = 5
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			queries := make([]*Query, len(exprs))
			for i, e := range exprs {
				queries[i] = MustCompile(e).Limited(k)
			}
			set := NewSet(queries, nil, eng.opt)
			if err := set.Evaluate(strings.NewReader(string(data))); err != nil {
				t.Fatal(err)
			}
			for i, c := range set.Counts() {
				want := fullCounts[i]
				if want > k {
					want = k
				}
				if c != want {
					t.Fatalf("query %d count = %d, want min(%d, %d)", i, c, k, fullCounts[i])
				}
			}
			if !set.Determined() {
				t.Fatal("all-limited set did not report Determined")
			}

			// A mixed set — one unlimited member — must consume the whole
			// stream and must not claim early determination.
			mixed := NewSet([]*Query{MustCompile(exprs[0]).Limited(k), MustCompile(exprs[1])}, nil, eng.opt)
			if err := mixed.Evaluate(strings.NewReader(string(data))); err != nil {
				t.Fatal(err)
			}
			if got := mixed.Counts()[1]; got != fullCounts[1] {
				t.Fatalf("unlimited member count = %d, want %d", got, fullCounts[1])
			}
			if mixed.Determined() {
				t.Fatal("mixed set claimed Determined")
			}
		})
	}
}

// poisonReader fails every Read: spliced after a prefix with io.MultiReader,
// any read past the prefix surfaces as errPoisonedTail.
var errPoisonedTail = errors.New("read past the determining event")

type poisonReader struct{}

func (poisonReader) Read([]byte) (int, error) { return 0, errPoisonedTail }

// TestMatchesDocStopsReading pins the SDI contract: once the first answer
// fixes the decision, MatchesDoc must not read another byte. The tail reader
// errors on any Read, so reaching it fails the evaluation loudly.
func TestMatchesDocStopsReading(t *testing.T) {
	q := MustCompile("_*.msg.sport")
	head := `<feed><msg><sport/></msg>` // decision fixed at </sport>
	r := io.MultiReader(strings.NewReader(head), poisonReader{})
	ok, err := q.MatchesDoc(r)
	if err != nil {
		t.Fatalf("MatchesDoc: %v", err)
	}
	if !ok {
		t.Fatal("MatchesDoc = false, want true")
	}

	// Without a match the whole stream must still be read — and the poisoned
	// tail must therefore surface.
	if _, err := q.MatchesDoc(io.MultiReader(strings.NewReader(`<feed><msg/></feed>`), poisonReader{})); !errors.Is(err, errPoisonedTail) {
		t.Fatalf("non-matching MatchesDoc error = %v, want poisoned tail", err)
	}
}

// TestStreamLimitReleasesRun drives the push API: after the limit-th answer
// the run is determined and further pushed events are absorbed without
// changing the answer.
func TestStreamLimitReleasesRun(t *testing.T) {
	var hits []int64
	s, err := MustCompile("_*.c").Stream(func(m Match) { hits = append(hits, m.Index) }, WithLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.StartElement("r"))
	for i := 0; i < 5; i++ {
		must(s.StartElement("c"))
		must(s.EndElement("c"))
	}
	must(s.EndElement("r"))
	must(s.Close())
	if len(hits) != 2 {
		t.Fatalf("hits = %v, want exactly 2", hits)
	}
	if s.Matches() != 2 {
		t.Fatalf("Matches = %d, want 2", s.Matches())
	}
	if !s.Stats().Determined {
		t.Fatal("stream run did not report Determined")
	}
}

// govHeadroomDoc opens with one immediately-decidable answer — a <b/> child
// of the root fixes the root's [b] condition — and then descends into the
// candidate-explosion chain of govChainDoc, where every open <a> is an
// undecided candidate until its subtree closes.
func govHeadroomDoc(n int) string {
	return "<r><b/>" + govChainDoc(n) + "</r>"
}

// TestGovernorHeadroomOnEarlyRelease shows the resource story of early
// termination: the same document under the same candidate cap trips
// PolicyFail when evaluated exhaustively, but sails through under limit 1,
// because the run is released at the determining event — before the
// pathological region is ever buffered.
func TestGovernorHeadroomOnEarlyRelease(t *testing.T) {
	q := MustCompile("_+[b]")
	doc := govHeadroomDoc(32)
	limits := ResourceLimits{MaxCandidates: 5}

	_, err := q.Count(strings.NewReader(doc), WithResourceLimits(limits, PolicyFail))
	if !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("unlimited governed Count error = %v, want ErrResourceLimit", err)
	}

	got, err := q.Limited(1).Count(strings.NewReader(doc), WithResourceLimits(limits, PolicyFail))
	if err != nil {
		t.Fatalf("limited governed Count: %v", err)
	}
	if got != 1 {
		t.Fatalf("limited governed Count = %d, want 1", got)
	}
}
