// Package spex is a streamed and progressive evaluator of regular path
// expressions with XPath-like qualifiers against XML streams, implementing
// the SPEX evaluation model of Olteanu, Kiesling and Bry, "An Evaluation of
// Regular Path Expressions with Qualifiers against XML Streams" (Technical
// Report PMS-FB-2002-12, University of Munich, 2002).
//
// A query such as
//
//	_*.country[province].name
//
// is compiled — in time linear in the query size — into a network of
// pushdown transducers. The XML input is processed in a single pass, one
// event at a time, without ever materializing the document: memory stays
// bounded by the document depth (for the transducer stacks) plus whatever
// answers cannot yet be emitted because their membership in the result is
// still undetermined.
//
// # Quick start
//
//	q := spex.MustCompile("_*.country[province].name")
//	stats, err := q.Results(xmlFile, func(r spex.Result) {
//	    fmt.Println(r.XML)
//	})
//
// The query language is the paper's rpeq grammar: labels, the wildcard "_",
// concatenation ".", union "|", closures "+" and "*" on labels, optional
// "?" and structural qualifiers "[...]" — extended with text-test
// qualifiers (a[b = "v"], also != and *= for contains). CompileXPath
// accepts the equivalent XPath fragment (// and / steps with predicates),
// plus backward axes (parent::, ancestor::, ..), rewritten into the
// forward fragment, and the following/preceding axes.
//
// # Early termination
//
// A trailing "limit N" or "first" clause (both syntaxes) caps the answer
// count: "_*.item limit 1" asks for the first answer in document order.
// As soon as the N-th answer is fixed the evaluation is determined — the
// engine releases all candidate state, stops reading the input, and
// returns, so a limited query over a huge stream reads only the prefix up
// to its last answer (earliest query answering). WithLimit and
// Query.Limited set the same budget programmatically, and MatchesDoc uses
// it to stop at the first answer.
package spex

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// Query is a compiled query. It is immutable and safe for concurrent use;
// each evaluation instantiates its own transducer network.
type Query struct {
	plan *core.Plan
}

// Compile parses an rpeq expression, e.g. "_*.a[b].c".
func Compile(expr string) (*Query, error) {
	p, err := core.Prepare(expr)
	if err != nil {
		return nil, err
	}
	return &Query{plan: p}, nil
}

// MustCompile is Compile panicking on error, for initializing query tables.
func MustCompile(expr string) *Query {
	q, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return q
}

// CompileXPath parses a query in the XPath fragment the paper covers —
// child (/) and descendant (//) steps, the * name test, structural
// predicates [...], and union (|) — plus the backward axes parent::,
// ancestor::, ancestor-or-self:: and .. (rewritten into the forward
// fragment), self:: and descendant[-or-self]::, the following:: and
// preceding:: axes, and text comparisons in predicates ([lang = "en"]).
// Example: "//country[province]/name".
func CompileXPath(path string) (*Query, error) {
	p, err := core.PrepareXPath(path)
	if err != nil {
		return nil, err
	}
	return &Query{plan: p}, nil
}

// String returns the source expression.
func (q *Query) String() string { return q.plan.String() }

// Limit returns the query's answer budget: the N of a trailing "limit N"
// clause, 1 for "first", or 0 for an unlimited query.
func (q *Query) Limit() int64 { return q.plan.Limit() }

// Limited returns a copy of the query that stops after the first n answers
// in document order (n <= 0 removes any limit). The copy shares the
// compiled plan's expression and symbol table, so deriving limited variants
// is free; the receiver is unchanged.
func (q *Query) Limited(n int64) *Query {
	return &Query{plan: q.plan.Limited(n)}
}

// Match identifies one answer node.
type Match struct {
	// Index is the node's document-order number: the document root is 0
	// and elements count from 1 in order of their start tags.
	Index int64
	// Name is the element label ("$" for the document root).
	Name string
}

// Result is one answer with its serialized subtree.
type Result struct {
	Match
	// XML is the answer's subtree serialized as XML.
	XML string
}

// Stats reports what an evaluation consumed: stream size and depth, network
// degree, maximum transducer stack size and condition-formula size, and
// output-side buffering. See DESIGN.md for how these correspond to the
// paper's complexity results.
type Stats = spexnet.Stats

// Metrics is a live metrics registry (see internal/obs): attach one to a
// Stream with WithMetrics and poll Snapshot from any goroutine while events
// flow. One registry may serve many evaluations; counters accumulate.
type Metrics = obs.Metrics

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// Snapshot is a point-in-time view of a metrics registry plus a heap
// sample, safe to take mid-stream from any goroutine.
type Snapshot = obs.Snapshot

// Tracer observes every transducer emission — the paper's transition traces
// (Figs. 4, 5, 13) as a first-class feature. Attach with WithTracer.
type Tracer = obs.Tracer

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc = obs.TracerFunc

// TraceEvent is one traced transducer emission in the paper's notation.
type TraceEvent = obs.TraceEvent

// TraceFilter selects trace events by message kind and transducer name.
type TraceFilter = obs.TraceFilter

// RingTracer retains the most recent trace events in a fixed-size ring.
type RingTracer = obs.RingTracer

// NewRingTracer returns a ring tracer retaining the last capacity events.
func NewRingTracer(capacity int) *RingTracer { return obs.NewRingTracer(capacity) }

// Count streams the document from r and returns the number of answers.
func (q *Query) Count(r io.Reader, opts ...StreamOption) (int64, error) {
	eo := core.EvalOptions{Mode: spexnet.ModeCount}
	for _, opt := range opts {
		opt(&eo)
	}
	stats, err := q.plan.EvaluateReader(r, eo)
	return stats.Output.Matches, err
}

// Matches streams the document from r, calling fn for every answer in
// document order. Answers are delivered progressively: as soon as an
// answer's membership is determined and all earlier answers have been
// delivered.
func (q *Query) Matches(r io.Reader, fn func(Match), opts ...StreamOption) (Stats, error) {
	eo := core.EvalOptions{
		Mode: spexnet.ModeNodes,
		Sink: func(res spexnet.Result) { fn(Match{Index: res.Index, Name: res.Name}) },
	}
	for _, opt := range opts {
		opt(&eo)
	}
	return q.plan.EvaluateReader(r, eo)
}

// Results streams the document from r, calling fn for every answer with its
// serialized subtree, in document order.
func (q *Query) Results(r io.Reader, fn func(Result), opts ...StreamOption) (Stats, error) {
	eo := core.EvalOptions{
		Mode: spexnet.ModeSerialize,
		Sink: func(res spexnet.Result) {
			fn(Result{
				Match: Match{Index: res.Index, Name: res.Name},
				XML:   xmlstream.Serialize(res.Events),
			})
		},
	}
	for _, opt := range opts {
		opt(&eo)
	}
	return q.plan.EvaluateReader(r, eo)
}

// WriteResults streams the document from r and writes each answer's XML
// fragment to w, one per line, returning the number of answers.
func (q *Query) WriteResults(r io.Reader, w io.Writer, opts ...StreamOption) (int64, error) {
	var n int64
	var werr error
	_, err := q.Results(r, func(res Result) {
		n++
		if werr == nil {
			_, werr = io.WriteString(w, res.XML+"\n")
		}
	}, opts...)
	if err != nil {
		return n, err
	}
	return n, werr
}

// EvaluateString runs the query over an XML string and returns the answers;
// a convenience for small documents and tests.
func (q *Query) EvaluateString(doc string) ([]Result, error) {
	var out []Result
	_, err := q.Results(strings.NewReader(doc), func(r Result) { out = append(out, r) })
	return out, err
}

// StreamOption configures an evaluation: accepted by Count, Matches,
// Results, StreamResults and Stream.
type StreamOption func(*core.EvalOptions)

// WithMetrics attaches a metrics registry to the stream: its counters
// update once per event (gauges on a short stride) and Stream.Snapshot (or
// the registry's own Snapshot) can be polled from any goroutine while
// events flow.
func WithMetrics(m *Metrics) StreamOption {
	return func(o *core.EvalOptions) { o.Metrics = m }
}

// WithTracer attaches a tracer observing every transducer emission.
func WithTracer(t Tracer) StreamOption {
	return func(o *core.EvalOptions) { o.Tracer = t }
}

// WithTraceID stamps every trace record of the evaluation with a
// stream-scoped identifier, correlating the records with the request or
// stream that started the evaluation (the spexd server mints one per ingest
// and threads it through to its result frames). Empty leaves records
// unstamped.
func WithTraceID(id string) StreamOption {
	return func(o *core.EvalOptions) { o.TraceID = id }
}

// WithContext bounds a reader-fed evaluation (Count, Matches, Results,
// StreamResults) by ctx: cancellation or deadline expiry is noticed at the
// next read of the input and surfaces as the evaluation's error. Long-lived
// services evaluating untrusted or slow streams use this to enforce
// per-request deadlines; push-mode streams ignore it, since the caller owns
// the feed loop there.
func WithContext(ctx context.Context) StreamOption {
	return func(o *core.EvalOptions) { o.Ctx = ctx }
}

// WithLimit caps the evaluation's answer count: the engine stops reading
// the stream — and releases all candidate state — as soon as the first n
// answers in document order are fixed. n > 0 overrides any limit in the
// query text; n < 0 forces unlimited evaluation; n == 0 keeps the query's
// own "limit N"/"first" clause (the default).
func WithLimit(n int64) StreamOption {
	return func(o *core.EvalOptions) { o.Limit = n }
}

// Stream returns a push-mode evaluation for unbounded or
// application-generated streams: feed events as they arrive; fn observes
// answers progressively. Call Close to finish a bounded stream; for
// genuinely unbounded streams, answers keep flowing as long as events do.
func (q *Query) Stream(fn func(Match), opts ...StreamOption) (*Stream, error) {
	eo := core.EvalOptions{
		Mode: spexnet.ModeNodes,
		Sink: func(res spexnet.Result) { fn(Match{Index: res.Index, Name: res.Name}) },
	}
	for _, opt := range opts {
		opt(&eo)
	}
	run, err := q.plan.NewRun(eo)
	if err != nil {
		return nil, err
	}
	return &Stream{run: run}, nil
}

// Stream is a push-mode evaluation. Its methods must be called from one
// goroutine — except Snapshot, which any goroutine may call.
type Stream struct {
	run   *core.Run
	depth int
}

// StartElement feeds an element start event.
func (s *Stream) StartElement(name string) error {
	if err := s.run.Feed(xmlstream.Start(name)); err != nil {
		return err
	}
	s.depth++
	return nil
}

// Attr is one element attribute, in document order.
type Attr struct {
	Name  string
	Value string
}

// StartElementAttrs feeds an element start event carrying attributes, so
// push-mode streams can drive @attr axes and predicates. Attribute order is
// preserved; duplicate names are the caller's responsibility (the pull-mode
// scanner rejects them at parse time).
func (s *Stream) StartElementAttrs(name string, attrs ...Attr) error {
	ev := xmlstream.Start(name)
	if len(attrs) > 0 {
		xa := make([]xmlstream.Attr, len(attrs))
		for i, a := range attrs {
			xa[i] = xmlstream.Attr{Name: a.Name, Value: a.Value}
		}
		ev.Attrs = xa
	}
	if err := s.run.Feed(ev); err != nil {
		return err
	}
	s.depth++
	return nil
}

// EndElement feeds an element end event; the name is tracked by the
// evaluator, which validates nesting. The depth bookkeeping changes only
// when the event is accepted, so a rejected Feed (e.g. on a closed run)
// leaves the stream's balance intact.
func (s *Stream) EndElement(name string) error {
	if s.depth <= 0 {
		return fmt.Errorf("spex: unbalanced EndElement(%q)", name)
	}
	if err := s.run.Feed(xmlstream.End(name)); err != nil {
		return err
	}
	s.depth--
	return nil
}

// Text feeds character data.
func (s *Stream) Text(data string) error {
	return s.run.Feed(xmlstream.Chars(data))
}

// Matches returns the number of answers delivered so far.
func (s *Stream) Matches() int64 { return s.run.Matches() }

// Stats returns the evaluation statistics so far: events and elements
// consumed, depth, transducer stack and formula maxima, and output-side
// buffering. It reads the network's own state, so call it from the feeding
// goroutine; for cross-goroutine polling use Snapshot with WithMetrics.
func (s *Stream) Stats() Stats { return s.run.Stats() }

// Snapshot returns a point-in-time view of the stream's metrics registry
// (attached with WithMetrics) plus a heap sample. It is safe to call from
// any goroutine while another feeds events. Without a registry the snapshot
// has Enabled == false.
func (s *Stream) Snapshot() Snapshot { return s.run.Snapshot() }

// Close ends the stream and validates the evaluation.
func (s *Stream) Close() error {
	if s.depth != 0 {
		return fmt.Errorf("spex: Close with %d unclosed element(s)", s.depth)
	}
	return s.run.Close()
}
