package spex

import (
	"strings"
	"testing"
)

// TestEvaluateBytesParallelScan cross-validates the in-memory evaluation
// paths against the reader path: for every set engine, EvaluateBytes (the
// zero-copy scan) and EvaluateBytes under the ParallelScan option (chunk
// scanning) must deliver exactly the hits Evaluate delivers from a reader,
// in the same order.
func TestEvaluateBytesParallelScan(t *testing.T) {
	// Large enough to clear the parallel scanner's splitting threshold, with
	// text and attributes in play.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 20000; i++ {
		sb.WriteString(`<a k="v"><b/>text</a><c><d/></c>`)
	}
	sb.WriteString("</r>")
	doc := sb.String()
	exprs := []string{"_*.a[b]", "r.c.d", "_*.b"}

	type hit struct {
		q   int
		idx int64
	}
	run := func(opts []SetOption, inMemory bool) []hit {
		t.Helper()
		queries := make([]*Query, len(exprs))
		for i, e := range exprs {
			queries[i] = MustCompile(e)
		}
		var hits []hit
		set := NewSet(queries, func(q int, m Match) { hits = append(hits, hit{q, m.Index}) }, opts...)
		var err error
		if inMemory {
			err = set.EvaluateBytes([]byte(doc))
		} else {
			err = set.Evaluate(strings.NewReader(doc))
		}
		if err != nil {
			t.Fatal(err)
		}
		return hits
	}
	same := func(label string, want, got []hit) {
		t.Helper()
		if len(want) != len(got) {
			t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: hit %d = %+v, want %+v", label, i, got[i], want[i])
			}
		}
	}

	engines := []struct {
		name string
		opts []SetOption
	}{
		{"shared", nil},
		{"sequential", []SetOption{Sequential()}},
		{"merged", []SetOption{Merged()}},
	}
	for _, eng := range engines {
		want := run(eng.opts, false)
		if len(want) == 0 {
			t.Fatalf("%s: workload broken, no hits", eng.name)
		}
		same(eng.name+"/bytes", want, run(eng.opts, true))
		for _, workers := range []int{0, 3} {
			opts := append(append([]SetOption{}, eng.opts...), ParallelScan(workers))
			same(eng.name+"/pscan", want, run(opts, true))
		}
	}
}

// TestParallelScanEarlyStop pins the worker-release contract: a set whose
// queries all hit their answer limits abandons the stitched stream before
// EOF, and the chunk workers must be let go rather than left blocked on
// their batch channels (the race-mode CI job watches this handoff).
func TestParallelScanEarlyStop(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 40000; i++ {
		sb.WriteString("<a><b/></a>")
	}
	sb.WriteString("</r>")

	var n int
	set := NewSet([]*Query{MustCompile("_*.b").Limited(1)},
		func(int, Match) { n++ }, ParallelScan(4))
	if err := set.EvaluateBytes([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("limited hits = %d, want 1", n)
	}
}
