package spex

import (
	"bytes"
	"strings"
	"testing"
)

const paperDoc = `<a><a><c/></a><b/><c/></a>`

func TestQuickAPI(t *testing.T) {
	q := MustCompile("_*.a[b].c")
	n, err := q.Count(strings.NewReader(paperDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Count: got %d, want 1", n)
	}
	res, err := q.EvaluateString(paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].XML != "<c></c>" || res[0].Name != "c" || res[0].Index != 5 {
		t.Fatalf("EvaluateString: got %+v", res)
	}
}

func TestCompileErrors(t *testing.T) {
	for _, bad := range []string{"", "a..b", "(a|b", "a[b", "a)", "(a.b)+", "a**"} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestCompileXPath(t *testing.T) {
	q, err := CompileXPath("//a[b]/c")
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Count(strings.NewReader(paperDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("got %d, want 1", n)
	}
}

func TestMatchesOrderAndSerialization(t *testing.T) {
	q := MustCompile("_*.c")
	var idx []int64
	if _, err := q.Matches(strings.NewReader(paperDoc), func(m Match) {
		idx = append(idx, m.Index)
		if m.Name != "c" {
			t.Errorf("name: got %q", m.Name)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != 3 || idx[1] != 5 {
		t.Fatalf("indices: got %v", idx)
	}

	var buf bytes.Buffer
	n, err := q.WriteResults(strings.NewReader(paperDoc), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || buf.String() != "<c></c>\n<c></c>\n" {
		t.Fatalf("WriteResults: n=%d out=%q", n, buf.String())
	}
}

func TestNestedResultSerialization(t *testing.T) {
	q := MustCompile("_+")
	doc := `<a><b>hi</b></a>`
	res, err := q.EvaluateString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].XML != "<a><b>hi</b></a>" || res[1].XML != "<b>hi</b>" {
		t.Fatalf("got %q and %q", res[0].XML, res[1].XML)
	}
}

func TestStreamPushMode(t *testing.T) {
	var seen []int64
	q := MustCompile("a.b")
	s, err := q.Stream(func(m Match) { seen = append(seen, m.Index) })
	if err != nil {
		t.Fatal(err)
	}
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(s.StartElement("a"))
	check(s.StartElement("b"))
	check(s.EndElement("b"))
	// Progressive: the answer is already out before the stream ends.
	if len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("progressive delivery failed: %v", seen)
	}
	check(s.StartElement("c"))
	check(s.EndElement("c"))
	check(s.EndElement("a"))
	check(s.Close())
	if s.Matches() != 1 {
		t.Fatalf("Matches: got %d", s.Matches())
	}
}

func TestMalformedInput(t *testing.T) {
	q := MustCompile("a")
	for _, doc := range []string{"", "<a>", "<a></b>", "</a>", "<a></a><b></b>", "<a><b></a></b>"} {
		if _, err := q.Count(strings.NewReader(doc)); err == nil {
			t.Errorf("Count(%q) unexpectedly succeeded", doc)
		}
	}
}

func TestQueryReuseIsConcurrent(t *testing.T) {
	q := MustCompile("_*.c")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			n, err := q.Count(strings.NewReader(paperDoc))
			if err == nil && n != 2 {
				done <- errCount(n)
				return
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errCount int64

func (e errCount) Error() string { return "unexpected count" }
