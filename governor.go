package spex

import (
	"repro/internal/core"
	"repro/internal/governor"
)

// ResourceLimits caps the resources one evaluation may consume. The paper's
// complexity results (§V) bound SPEX's memory by the document depth, the
// query size and the undecided-answer population; ResourceLimits turns those
// theorems into operational guarantees for untrusted inputs: a cap of zero
// means unlimited, any non-zero cap is enforced within one stream event of
// being exceeded.
type ResourceLimits = governor.Limits

// Policy selects what happens when a resource limit trips: fail the
// evaluation with a *LimitError, degrade the query to count-only mode
// (results are counted but no longer materialized), or shed it (the query
// stops consuming resources; the stream keeps flowing for the others).
type Policy = governor.Policy

// Governor policies. PolicyDegrade applies only to reducible resources
// (candidates and buffered events); for the others it falls back to
// PolicyFail, since no cheaper evaluation mode exists for them.
const (
	PolicyFail    = governor.PolicyFail
	PolicyDegrade = governor.PolicyDegrade
	PolicyShed    = governor.PolicyShed
)

// ParsePolicy parses a policy name: "fail" (or empty), "degrade"
// ("count-only"), "shed" ("drop").
func ParsePolicy(s string) (Policy, error) { return governor.ParsePolicy(s) }

// LimitError reports which resource limit an evaluation exceeded. It
// unwraps to ErrResourceLimit, so errors.Is(err, spex.ErrResourceLimit)
// identifies governor terminations without inspecting the resource.
type LimitError = governor.LimitError

// ErrResourceLimit is the sentinel all governor limit errors match.
var ErrResourceLimit = governor.ErrResourceLimit

// WithResourceLimits attaches a resource governor to the evaluation:
// non-zero caps in l are enforced under policy p. Zero-valued limits leave
// the evaluation ungoverned.
func WithResourceLimits(l ResourceLimits, p Policy) StreamOption {
	cfg := &governor.Config{Limits: l, Policy: p}
	return func(o *core.EvalOptions) { o.Governor = cfg }
}
