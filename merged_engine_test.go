package spex

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
)

// engineHit is one answer with its originating query position — the unit
// the cross-validation below compares across engines. Two engines agree on
// a workload iff they produce the same hit sequence per query and the same
// Counts slice.
type engineHit struct {
	query int
	index int64
	name  string
}

// setEngines enumerates every engine selection a Set can run under,
// including the merged compiler composed with the parallel sharder. The
// sequential engine is the baseline the others are checked against.
var setEngines = []struct {
	name string
	opts []SetOption
}{
	{"sequential", []SetOption{Sequential()}},
	{"shared", []SetOption{Shared()}},
	{"parallel", []SetOption{Parallel(2)}},
	{"merged", []SetOption{Merged()}},
	{"merged+parallel", []SetOption{Merged(), Parallel(2)}},
}

// runSetEngine evaluates the queries over doc under one engine selection
// and returns the hit sequence and per-query counts.
func runSetEngine(t *testing.T, queries []*Query, doc string, opts ...SetOption) ([]engineHit, []int64) {
	t.Helper()
	var hits []engineHit
	set := NewSet(queries, func(qi int, m Match) {
		hits = append(hits, engineHit{qi, m.Index, m.Name})
	}, opts...)
	if err := set.Evaluate(strings.NewReader(doc)); err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return hits, set.Counts()
}

// perQuery splits a hit sequence by query position. The engines only
// guarantee document order per query — the parallel engine may interleave
// different queries' deliveries differently — so the comparison is
// per-query, not on the global sequence.
func perQuery(n int, hits []engineHit) [][]engineHit {
	out := make([][]engineHit, n)
	for _, h := range hits {
		out[h.query] = append(out[h.query], h)
	}
	return out
}

// crossValidate runs the workload under every engine and requires each to
// reproduce the sequential baseline's per-query answers exactly.
func crossValidate(t *testing.T, queries []*Query, doc string) {
	t.Helper()
	baseHits, baseCounts := runSetEngine(t, queries, doc, Sequential())
	base := perQuery(len(queries), baseHits)
	for _, e := range setEngines[1:] {
		hits, counts := runSetEngine(t, queries, doc, e.opts...)
		for i := range counts {
			if counts[i] != baseCounts[i] {
				t.Errorf("%s: query %d counts %d, sequential %d", e.name, i, counts[i], baseCounts[i])
			}
		}
		got := perQuery(len(queries), hits)
		for qi := range base {
			if len(got[qi]) != len(base[qi]) {
				t.Errorf("%s: query %d delivered %d hits, sequential %d", e.name, qi, len(got[qi]), len(base[qi]))
				continue
			}
			for j := range base[qi] {
				if got[qi][j] != base[qi][j] {
					t.Errorf("%s: query %d hit %d = %+v, sequential %+v", e.name, qi, j, got[qi][j], base[qi][j])
				}
			}
		}
	}
}

// TestMergedEngineFig1 cross-validates the merged engine on the paper's
// Figure-1 running example with an overlapping subscription mix: an exact
// duplicate (collapses onto one sink), an equivalent rephrasing via a
// nullable qualifier, a containing query, and a statically unsatisfiable
// member (pruned before any transducer is built).
func TestMergedEngineFig1(t *testing.T) {
	queries := []*Query{
		MustCompile("_*.a[b].c"),
		MustCompile("_*.a[b].c"),  // duplicate of 0
		MustCompile("_*.a[b*].c"), // [b*] is nullable: equivalent to _*.a.c
		MustCompile("_*.c"),       // contains the others
		MustCompile("a.b"),
		MustCompile(`c[@x="1" and @x="2"]`), // unsatisfiable: pruned
	}
	crossValidate(t, queries, paperDoc)
}

// TestMergedEngineDMOZ cross-validates on a DMOZ-shaped document with the
// same query heads the sdi-shared benchmark subscribes — shared spines with
// divergent tails, which is where prefix factoring actually shares work.
func TestMergedEngineDMOZ(t *testing.T) {
	var buf bytes.Buffer
	if _, err := bench.Dataset("dmoz-structure", 0.002).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	queries := []*Query{
		MustCompile("_*.Topic"),
		MustCompile("_*.Topic.catid"),
		MustCompile("_*.Topic[catid]"),
		MustCompile("RDF.Topic"),
		MustCompile("_*.Topic"), // duplicate
		MustCompile("_*.Topic[catid*].Title"),
	}
	crossValidate(t, queries, buf.String())
}

// TestMergedEngineAttributes cross-validates attribute tests: value
// agreement, negation, and an attribute-contradiction that the static
// pre-pass prunes.
func TestMergedEngineAttributes(t *testing.T) {
	doc := `<r><a k="1"><c/></a><a k="2"><c/></a><a><c/></a><a k="1" s="v"><c/></a></r>`
	queries := []*Query{
		MustCompile(`_*.a[@k].c`),
		MustCompile(`_*.a[@k="1"].c`),
		MustCompile(`_*.a[not(@k)].c`),
		MustCompile(`_*.a[@k="1"].c`), // duplicate
		MustCompile(`_*.a[@k and not(@s)].c`),
		MustCompile(`_*.a[@k="1" and @k="2"]`), // unsatisfiable
	}
	crossValidate(t, queries, doc)
}

// TestMergedEngineLimits cross-validates answer limits: collapsed
// duplicates with different budgets must each stop at their own limit, and
// an unlimited member sharing the sink must still see every answer.
func TestMergedEngineLimits(t *testing.T) {
	doc := `<r><a><c/></a><a><c/></a><a><c/></a><a><c/></a></r>`
	queries := []*Query{
		MustCompile("_*.c").Limited(1),
		MustCompile("_*.c").Limited(3),
		MustCompile("_*.c"), // unlimited, same canonical form
		MustCompile("_*.a.c").Limited(2),
		MustCompile("r.a[c]"),
	}
	crossValidate(t, queries, doc)
}
