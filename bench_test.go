package spex

// Benchmarks regenerating the paper's evaluation (§VI): one series per
// figure. The default scales keep `go test -bench=.` under a few minutes;
// `cmd/spexbench` reaches the paper's full document sizes.
//
//   - BenchmarkFig14Mondial / BenchmarkFig14WordNet: Figure 14 — SPEX vs
//     the two in-memory baselines (Saxon and Fxgrep stand-ins) over query
//     classes 1–4 / 1–3.
//   - BenchmarkFig15DMOZStructure / ...Content: Figure 15 — SPEX on the
//     large flat documents (the baselines exceed memory at paper scale;
//     they are included here at reduced scale for reference).
//   - BenchmarkCompileLinear: Lemma V.1 — translation time vs query size.
//   - BenchmarkAblation*: design-choice ablations (formula normalization,
//     count vs serialize output, scanner vs encoding/xml front end).

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/multi"
	"repro/internal/obs"
	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// Benchmark document scales: Fig. 14 documents at the paper's size, DMOZ
// reduced (the paper's 300 MB / 1 GB are reachable via cmd/spexbench).
const (
	benchMondialScale = 1
	benchWordNetScale = 0.25
	benchDMOZScale    = 0.01
)

var benchDocs struct {
	once sync.Once
	m    map[string][]byte
}

func benchDoc(b *testing.B, name string) []byte {
	benchDocs.once.Do(func() {
		benchDocs.m = map[string][]byte{
			"mondial":        dataset.Mondial(benchMondialScale).Bytes(),
			"wordnet":        dataset.WordNet(benchWordNetScale).Bytes(),
			"dmoz-structure": dataset.DMOZStructure(benchDMOZScale).Bytes(),
			"dmoz-content":   dataset.DMOZContent(benchDMOZScale).Bytes(),
		}
	})
	doc, ok := benchDocs.m[name]
	if !ok {
		b.Fatalf("unknown benchmark document %q", name)
	}
	return doc
}

// runFigure benchmarks each workload with each engine as sub-benchmarks
// named class<N>/<engine>.
func runFigure(b *testing.B, workloads []bench.Workload, docName string, engines []bench.Engine) {
	doc := benchDoc(b, docName)
	for _, w := range workloads {
		w := w
		for _, e := range engines {
			e := e
			b.Run(fmt.Sprintf("class%d/%s", w.Class, e), func(b *testing.B) {
				b.SetBytes(int64(len(doc)))
				var matches int64
				for i := 0; i < b.N; i++ {
					switch e {
					case bench.EngineSPEX:
						matches = benchSPEX(b, w.Query, doc)
					case bench.EngineTreeWalk:
						matches = benchBaseline(b, baseline.TreeWalk{}, w.Query, doc)
					case bench.EngineAutomaton:
						matches = benchBaseline(b, baseline.Automaton{}, w.Query, doc)
					case bench.EngineXScan:
						expr := rpeq.MustParse(w.Query)
						if !(baseline.XScan{}).Supports(expr) {
							b.Skip("xscan: qualifiers unsupported ([18])")
						}
						n, err := baseline.XScan{}.Count(bytes.NewReader(doc), expr)
						if err != nil {
							b.Fatal(err)
						}
						matches = n
					}
				}
				b.ReportMetric(float64(matches), "matches")
			})
		}
	}
}

func benchSPEX(b *testing.B, query string, doc []byte) int64 {
	// Compilation is inside the measured region, as in the paper ("the
	// times given ... for SPEX include the compilation").
	plan, err := core.Prepare(query)
	if err != nil {
		b.Fatal(err)
	}
	stats, err := plan.EvaluateReader(bytes.NewReader(doc), core.EvalOptions{Mode: spexnet.ModeCount})
	if err != nil {
		b.Fatal(err)
	}
	return stats.Output.Matches
}

func benchBaseline(b *testing.B, ev baseline.Evaluator, query string, doc []byte) int64 {
	expr, err := rpeq.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	nodes, err := baseline.EvalReader(ev, bytes.NewReader(doc), expr)
	if err != nil {
		b.Fatal(err)
	}
	return int64(len(nodes))
}

// BenchmarkFig14Mondial regenerates Figure 14 (left): MONDIAL, query
// classes 1–4, all three engines.
func BenchmarkFig14Mondial(b *testing.B) {
	runFigure(b, bench.Fig14Mondial, "mondial", bench.Engines)
}

// BenchmarkFig14WordNet regenerates Figure 14 (right): WordNet, classes 1–3.
func BenchmarkFig14WordNet(b *testing.B) {
	runFigure(b, bench.Fig14WordNet, "wordnet", bench.Engines)
}

// BenchmarkFig15DMOZStructure regenerates Figure 15 for the structure dump
// (SPEX only, as in the paper — the baselines exhaust memory at full
// scale).
func BenchmarkFig15DMOZStructure(b *testing.B) {
	runFigure(b, bench.Fig15DMOZ, "dmoz-structure", bench.StreamingEngines)
}

// BenchmarkFig15DMOZContent regenerates Figure 15 for the content dump.
func BenchmarkFig15DMOZContent(b *testing.B) {
	runFigure(b, bench.Fig15DMOZ, "dmoz-content", bench.StreamingEngines)
}

// BenchmarkCompileLinear validates Lemma V.1 empirically: compiling an
// rpeq(n) into a network takes time linear in n.
func BenchmarkCompileLinear(b *testing.B) {
	for _, steps := range []int{4, 16, 64, 256} {
		expr := "_*"
		for i := 0; i < steps; i++ {
			expr += ".a[b]"
		}
		node := rpeq.MustParse(expr)
		b.Run(fmt.Sprintf("steps%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spexnet.Build(node, spexnet.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNormalization measures the Remark V.1 design choice:
// duplicate elimination in condition formulas, on the closure-with-
// qualifier workload where nested scopes create disjunctions.
func BenchmarkAblationNormalization(b *testing.B) {
	doc := dataset.Ladder(64).Bytes()
	node := rpeq.MustParse("_+[q]._")
	for _, raw := range []bool{false, true} {
		name := "normalized"
		if raw {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				net, err := spexnet.Build(node, spexnet.Options{Mode: spexnet.ModeCount, RawFormulas: raw})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := net.Run(xmlstream.NewScanner(bytes.NewReader(doc))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOutputMode compares count, node and serialize output
// modes on a match-heavy query, quantifying the cost of result assembly
// (§III.8's output transducer is the only Turing-power component).
func BenchmarkAblationOutputMode(b *testing.B) {
	doc := benchDoc(b, "mondial")
	node := rpeq.MustParse("_*.city")
	modes := []struct {
		name string
		mode spexnet.ResultMode
	}{
		{"count", spexnet.ModeCount},
		{"nodes", spexnet.ModeNodes},
		{"serialize", spexnet.ModeSerialize},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				net, err := spexnet.Build(node, spexnet.Options{
					Mode: m.mode,
					Sink: func(spexnet.Result) {},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := net.Run(xmlstream.NewScanner(bytes.NewReader(doc))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationObservability prices the observability layer on the
// class-2 MONDIAL workload: "off" is the uninstrumented fast path (no
// registry, no tracer — emit closures carry no per-message branches and
// Step takes the bare propagate loop), which must stay within a few
// percent of the seed; "metrics" adds the per-event instrument updates;
// "trace" additionally routes every transducer emission through a ring
// tracer.
func BenchmarkAblationObservability(b *testing.B) {
	doc := benchDoc(b, "mondial")
	plan, err := core.Prepare("_*.country[province].name")
	if err != nil {
		b.Fatal(err)
	}
	evaluate := func(b *testing.B, opts core.EvalOptions) {
		b.Helper()
		opts.Mode = spexnet.ModeCount
		if _, err := plan.Evaluate(xmlstream.NewScanner(bytes.NewReader(doc)), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			evaluate(b, core.EvalOptions{})
		}
	})
	b.Run("metrics", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		m := obs.NewMetrics()
		for i := 0; i < b.N; i++ {
			evaluate(b, core.EvalOptions{Metrics: m})
		}
	})
	b.Run("trace", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		tr := obs.NewRingTracer(1024)
		for i := 0; i < b.N; i++ {
			evaluate(b, core.EvalOptions{Tracer: tr})
		}
	})
}

// ablationCountWorkload is the DMOZ count workload of the interning
// ablation: class-1 descendant paths of increasing answer density, from the
// Fig. 15 shape (_*.Topic.Title) to near-universal matches (RDF._*). The
// high-density queries are where the allocation-free count path matters —
// the string baseline allocates one candidate record per answer.
var ablationCountWorkload = []string{"_*.Topic.Title", "_*.Topic._", "RDF._*", "_*._"}

// BenchmarkAblationInterning prices the symbol-interned event pipeline on
// the DMOZ count workload: "interned" scans with a shared symbol table, so
// every label test in the network is one integer comparison and count mode
// takes the allocation-free fast path; "strings" is the pre-interning
// pipeline (string label comparisons, allocating candidate records). Events
// are pre-scanned once and replayed, so the measured region is the
// evaluation pipeline, not the tokenizer. One iteration evaluates the whole
// workload; events/s aggregates over it.
func BenchmarkAblationInterning(b *testing.B) {
	doc := benchDoc(b, "dmoz-structure")
	nodes := make([]rpeq.Node, len(ablationCountWorkload))
	for i, q := range ablationCountWorkload {
		nodes[i] = rpeq.MustParse(q)
	}
	run := func(b *testing.B, noInterning bool) {
		opts := spexnet.Options{Mode: spexnet.ModeCount, NoInterning: noInterning}
		scanOpts := []xmlstream.ScannerOption{xmlstream.WithText(false)}
		if !noInterning {
			opts.Symtab = xmlstream.NewSymtab()
			scanOpts = append(scanOpts, xmlstream.WithSymtab(opts.Symtab))
		}
		events, err := xmlstream.Collect(xmlstream.NewScanner(bytes.NewReader(doc), scanOpts...))
		if err != nil {
			b.Fatal(err)
		}
		src := &xmlstream.SliceSource{Events: events}
		b.SetBytes(int64(len(doc) * len(nodes)))
		b.ResetTimer()
		var matches int64
		var eventsRun int64
		for i := 0; i < b.N; i++ {
			matches, eventsRun = 0, 0
			for _, node := range nodes {
				net, err := spexnet.Build(node, opts)
				if err != nil {
					b.Fatal(err)
				}
				src.Reset()
				stats, err := net.Run(src)
				if err != nil {
					b.Fatal(err)
				}
				matches += stats.Output.Matches
				eventsRun += stats.Events
			}
		}
		if matches == 0 {
			b.Fatal("interning ablation found no answers; workload broken")
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(eventsRun)*float64(b.N)/secs, "events/s")
		}
	}
	b.Run("interned", func(b *testing.B) { run(b, false) })
	b.Run("strings", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationScanner compares the hand-written scanner against
// encoding/xml as the network's front end.
func BenchmarkAblationScanner(b *testing.B) {
	doc := benchDoc(b, "mondial")
	plan, err := core.Prepare("_*.province.city")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scanner", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := plan.Evaluate(xmlstream.NewScanner(bytes.NewReader(doc)), core.EvalOptions{Mode: spexnet.ModeCount}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encoding-xml", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := plan.Evaluate(xmlstream.NewDecoder(bytes.NewReader(doc)), core.EvalOptions{Mode: spexnet.ModeCount}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDepthScaling measures throughput against document depth d: per
// Lemma V.2 time stays linear in the stream while stacks grow with d.
func BenchmarkDepthScaling(b *testing.B) {
	for _, d := range []int{4, 16, 64, 256} {
		doc := deepWide(d, 4096)
		b.Run(fmt.Sprintf("depth%d", d), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				benchSPEX(b, "_*.leaf", doc)
			}
		})
	}
}

// deepWide builds a document with the given nesting depth and total element
// count: chains of depth d repeated until the size is reached.
func deepWide(depth, elements int) []byte {
	var sb strings.Builder
	sb.WriteString("<root>")
	for n := 0; n < elements; n += depth + 1 {
		for i := 0; i < depth; i++ {
			sb.WriteString("<n>")
		}
		sb.WriteString("<leaf></leaf>")
		for i := 0; i < depth; i++ {
			sb.WriteString("</n>")
		}
	}
	sb.WriteString("</root>")
	return []byte(sb.String())
}

// BenchmarkStreamScanner isolates the XML front end (no query).
func BenchmarkStreamScanner(b *testing.B) {
	doc := benchDoc(b, "wordnet")
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		src := xmlstream.NewScanner(bytes.NewReader(doc), xmlstream.WithText(false))
		for {
			_, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMultiQueryScaling measures the §IX multi-query optimization on
// the §VIII filtering scenario (XFilter/YFilter): N subscription queries
// with common prefixes over one stream, evaluated by N independent networks
// ("separate") versus one shared network with N sinks ("shared").
// At n=1000 (run with -benchtime as needed) the measured gap widens to
// ≈ 5.6× on this machine: 39.0 s separate vs 6.9 s shared per pass.
func BenchmarkMultiQueryScaling(b *testing.B) {
	doc := benchDoc(b, "dmoz-structure")
	for _, n := range []int{10, 100} {
		subs := make([]multi.Subscription, n)
		for i := range subs {
			// Rotate over a few shapes so prefixes, qualifiers and
			// final steps are shared to different degrees.
			var expr string
			switch i % 4 {
			case 0:
				expr = fmt.Sprintf("_*.Topic[editor].f%d", i)
			case 1:
				expr = fmt.Sprintf("_*.Topic.f%d", i)
			case 2:
				expr = "_*.Topic[editor].Title"
			default:
				expr = fmt.Sprintf("RDF.Topic[f%d]", i)
			}
			plan, err := core.Prepare(expr)
			if err != nil {
				b.Fatal(err)
			}
			subs[i] = multi.Subscription{Name: fmt.Sprintf("q%d", i), Plan: plan}
		}
		b.Run(fmt.Sprintf("n%d/separate", n), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				set, err := multi.NewSet(subs)
				if err != nil {
					b.Fatal(err)
				}
				if err := set.Run(xmlstream.NewScanner(bytes.NewReader(doc), xmlstream.WithText(false))); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n%d/shared", n), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				set, err := multi.NewSharedSet(subs)
				if err != nil {
					b.Fatal(err)
				}
				if err := set.Run(xmlstream.NewScanner(bytes.NewReader(doc), xmlstream.WithText(false))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
