package spex

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/xmlstream"
)

// Feed-boundary invariance: where the input happens to be split — byte
// chunks from the network, event batches pushed into an engine — must never
// change the result. These properties are deterministic (seeded) random
// tests over the boundary space; the fuzzer covers the query/document space.

// chunkedReader yields the document in the pre-computed chunks, one per
// Read call, so token boundaries land wherever the split says — including
// mid-tag and mid-text.
type chunkedReader struct {
	chunks [][]byte
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	for len(c.chunks) > 0 && len(c.chunks[0]) == 0 {
		c.chunks = c.chunks[1:]
	}
	if len(c.chunks) == 0 {
		return 0, io.EOF
	}
	n := copy(p, c.chunks[0])
	c.chunks[0] = c.chunks[0][n:]
	return n, nil
}

// splitRandom cuts data into pieces at positions drawn from rng.
func splitRandom(data []byte, rng *rand.Rand) [][]byte {
	var chunks [][]byte
	for len(data) > 0 {
		n := 1 + rng.Intn(len(data))
		chunks = append(chunks, data[:n])
		data = data[n:]
	}
	return chunks
}

const boundaryDoc = `<lib><book year="2002"><title>Streams</title><ref/></book>` +
	`<book><title>Qualifiers</title></book><misc><ref/>tail</misc></lib>`

var boundaryQueries = []string{
	"_*.book[ref].title", "_*.title", "lib.book", "_*[_*.ref]", "_*.misc._",
}

// TestByteBoundaryInvariance splits the serialized document at random byte
// positions: the scanner must reassemble tokens across chunk boundaries, so
// the full results output — not just the counts — is byte-identical.
func TestByteBoundaryInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, expr := range boundaryQueries {
		q := MustCompile(expr)
		var want bytes.Buffer
		if _, err := q.WriteResults(strings.NewReader(boundaryDoc), &want); err != nil {
			t.Fatalf("%s unsplit: %v", expr, err)
		}
		for round := 0; round < 20; round++ {
			var got bytes.Buffer
			r := &chunkedReader{chunks: splitRandom([]byte(boundaryDoc), rng)}
			if _, err := q.WriteResults(r, &got); err != nil {
				t.Fatalf("%s round %d: %v", expr, round, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s round %d: chunked output diverged:\n got %q\nwant %q",
					expr, round, got.Bytes(), want.Bytes())
			}
		}
	}
}

// TestEventBoundaryInvariance feeds the event stream to each multi-query
// engine in random batches through the push API (Feed + Close): every
// engine must report exactly the counts of the single-shot Run, regardless
// of where the batch boundaries fall.
func TestEventBoundaryInvariance(t *testing.T) {
	events, err := xmlstream.Collect(xmlstream.NewScanner(strings.NewReader(boundaryDoc)))
	if err != nil {
		t.Fatal(err)
	}
	newEngines := func(t *testing.T) map[string]interface {
		Feed(ev xmlstream.Event) error
		Close() error
		Matches() map[string]int64
	} {
		t.Helper()
		subs := func() []multi.Subscription {
			var subs []multi.Subscription
			for _, expr := range boundaryQueries {
				plan, err := core.Prepare(expr)
				if err != nil {
					t.Fatal(err)
				}
				subs = append(subs, multi.Subscription{Name: expr, Plan: plan})
			}
			return subs
		}
		seq, err := multi.NewSet(subs())
		if err != nil {
			t.Fatal(err)
		}
		sh, err := multi.NewSharedSet(subs())
		if err != nil {
			t.Fatal(err)
		}
		par, err := multi.NewParallelSet(subs(), multi.ParallelOptions{Shards: 2, BatchSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		return map[string]interface {
			Feed(ev xmlstream.Event) error
			Close() error
			Matches() map[string]int64
		}{"sequential": seq, "shared": sh, "parallel": par}
	}

	// Reference counts: one whole-stream run per engine.
	want := map[string]map[string]int64{}
	for name, eng := range newEngines(t) {
		for _, ev := range events {
			if err := eng.Feed(ev); err != nil {
				t.Fatalf("%s reference feed: %v", name, err)
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("%s reference close: %v", name, err)
		}
		want[name] = eng.Matches()
	}

	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 10; round++ {
		// Random batch boundaries, shared by all engines this round.
		var batches [][]xmlstream.Event
		rest := events
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			batches = append(batches, rest[:n])
			rest = rest[n:]
		}
		for name, eng := range newEngines(t) {
			for _, batch := range batches {
				for _, ev := range batch {
					if err := eng.Feed(ev); err != nil {
						t.Fatalf("%s round %d: %v", name, round, err)
					}
				}
			}
			if err := eng.Close(); err != nil {
				t.Fatalf("%s round %d close: %v", name, round, err)
			}
			got := eng.Matches()
			for q, w := range want[name] {
				if got[q] != w {
					t.Fatalf("%s round %d (%d batches): %q counted %d, want %d",
						name, round, len(batches), q, got[q], w)
				}
			}
		}
	}
}
