package spex

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/multi"
	"repro/internal/xmlstream"
)

// The golden adversarial corpus: testdata/adversarial/corpus.txt pins the
// shapes, sizes, queries and answer counts; TestAdversarialGoldenManifest
// guards the pin against drift, and TestAdversarialGoldenCorpus evaluates
// a scaled rendition of every shape on all three multi-query engines. The
// full-size counts are validated by the CI adversarial sweep (spexbench
// -fig adversarial -check is self-checking against the same table) —
// running the depth-10k and qualifier-bomb shapes ungoverned inside every
// `go test` would cost minutes, not milliseconds.

// TestAdversarialGoldenManifest checks the checked-in manifest is exactly
// the table dataset.Adversarial() serves to tests, spexgen and spexbench.
func TestAdversarialGoldenManifest(t *testing.T) {
	raw, err := os.ReadFile("testdata/adversarial/corpus.txt")
	if err != nil {
		t.Fatal(err)
	}
	var golden []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		golden = append(golden, line)
	}
	table := dataset.Adversarial()
	if len(golden) != len(table) {
		t.Fatalf("manifest has %d cases, table has %d", len(golden), len(table))
	}
	for i, c := range table {
		want := fmt.Sprintf("shape=%s size=%d query=%s want=%d", c.Doc.Name, c.Size, c.Query, c.Want)
		if golden[i] != want {
			t.Errorf("manifest line %d:\n  got  %s\n  want %s", i+1, golden[i], want)
		}
	}
}

// TestAdversarialGoldenCorpus runs every shape, scaled to test size, on
// the sequential, shared and parallel engines: each must report exactly
// the corpus's (scaled) pinned count.
func TestAdversarialGoldenCorpus(t *testing.T) {
	scale := 0.02
	if testing.Short() {
		scale = 0.002
	}
	for _, c := range dataset.AdversarialAt(scale) {
		c := c
		t.Run(c.Doc.Name, func(t *testing.T) {
			plan, err := core.Prepare(c.Query)
			if err != nil {
				t.Fatal(err)
			}
			sub := func() []multi.Subscription {
				return []multi.Subscription{{Name: "q", Plan: plan}}
			}
			engines := map[string]interface {
				Run(src xmlstream.Source) error
				Matches() map[string]int64
			}{}
			if s, err := multi.NewSet(sub()); err == nil {
				engines["sequential"] = s
			} else {
				t.Fatal(err)
			}
			if s, err := multi.NewSharedSet(sub()); err == nil {
				engines["shared"] = s
			} else {
				t.Fatal(err)
			}
			if s, err := multi.NewParallelSet(sub(), multi.ParallelOptions{Shards: 2}); err == nil {
				engines["parallel"] = s
			} else {
				t.Fatal(err)
			}
			for name, eng := range engines {
				if err := eng.Run(c.Doc.Stream()); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got := eng.Matches()["q"]; got != c.Want {
					t.Errorf("%s: %q over %s(%d) counted %d, want %d",
						name, c.Query, c.Doc.Name, c.Size, got, c.Want)
				}
			}
		})
	}
}
