package spex

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/rpeq"
	"repro/internal/xmlstream"
)

// fuzzDoc interprets prog as a tree-building program and renders the
// resulting document: each byte either closes the innermost open element
// (odd bytes) or opens one of four names (even bytes, two name-selector
// bits). An opening byte's higher bits attach attributes: bit 3 adds k
// (value "1" or "2" by bit 5), bit 4 adds s="v" — so the fuzzer explores
// attribute presence and value agreement alongside tree shape. The whole
// program is wrapped in a <r> root, so any byte string yields a
// well-formed, single-rooted, element-only document — the fuzzer explores
// tree shapes instead of fighting XML syntax.
func fuzzDoc(prog []byte) string {
	const maxOps = 96
	if len(prog) > maxOps {
		prog = prog[:maxOps]
	}
	names := [4]string{"a", "b", "c", "q"}
	var b strings.Builder
	var stack []string
	b.WriteString("<r>")
	for _, op := range prog {
		if op&1 == 1 {
			if n := len(stack); n > 0 {
				b.WriteString("</" + stack[n-1] + ">")
				stack = stack[:n-1]
			}
			continue
		}
		name := names[(op>>1)&3]
		b.WriteString("<" + name)
		if op&8 != 0 {
			if op&32 != 0 {
				b.WriteString(` k="2"`)
			} else {
				b.WriteString(` k="1"`)
			}
		}
		if op&16 != 0 {
			b.WriteString(` s="v"`)
		}
		b.WriteString(">")
		stack = append(stack, name)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		b.WriteString("</" + stack[i] + ">")
	}
	b.WriteString("</r>")
	return b.String()
}

// fuzzProg renders a shape spelled as a string of opens (a, b, c, q) and
// closes (any other byte, conventionally '.') into the program encoding —
// the inverse of fuzzDoc, for seeding the corpus with specific trees.
func fuzzProg(shape string) []byte {
	sel := map[byte]byte{'a': 0, 'b': 1, 'c': 2, 'q': 3}
	prog := make([]byte, len(shape))
	for i := 0; i < len(shape); i++ {
		if c, ok := sel[shape[i]]; ok {
			prog[i] = c << 1
		} else {
			prog[i] = 1
		}
	}
	return prog
}

// FuzzEngineEquivalence is the differential correctness harness: for every
// query the compiler accepts and every generated document, the sequential,
// shared and parallel multi-query engines must report exactly the answer
// count of the DOM tree-walk oracle. The seed corpus covers the paper's
// Figure-1 running example ("<a><a><c/></a><b/><c/></a>", here nested
// under the generated root) and the adversarial query shapes.
func FuzzEngineEquivalence(f *testing.F) {
	// Opens/closes spelling Fig. 1's document: <a><a><c/></a><b/><c/></a>.
	fig1 := fuzzProg("aac..b.c..")
	for _, q := range []string{
		"_*.a[b].c", "_*.c", "_*.a[c].c", "a.a.c", "_*.a[_*.b]",
		"_*[_*[q]]", "(a|b).c", "a+.c", "//a[b]/c", "_*.a[b]._*.c",
	} {
		f.Add(q, fig1)
	}
	f.Add("_*.b[preceding::a]", fuzzProg("a.b."))
	f.Add("r.a", []byte{})
	// Attribute-bearing shapes: Fig. 1 with k="1" on every element, and a
	// mixed shape where only some elements carry k or s.
	attrFig1 := fuzzProg("aac..b.c..")
	for i := range attrFig1 {
		attrFig1[i] |= 8
	}
	for _, q := range []string{
		`_*.a[@k]`, `_*.a[@k="1"].c`, `_*.a[@k!="1"]`, `_*.a[not(@k)]`,
		`_*.a[@k and not(@s)].c`, `_*._.@k`, `//a[@k='1']/c`, `_*.a[@s or c]`,
	} {
		f.Add(q, attrFig1)
	}
	f.Add(`_*.a[@k="2"]`, []byte{8 | 32, 8, 16, 1, 1, 1})

	f.Fuzz(func(t *testing.T, query string, prog []byte) {
		if len(query) > 48 {
			return // keep per-input cost bounded
		}
		expr, err := rpeq.Parse(query)
		if err != nil {
			if expr, err = rpeq.Parse(query, rpeq.WithXPath()); err != nil {
				return
			}
			query = expr.String() // the engines take rpeq syntax
		}
		plan, err := core.Prepare(query)
		if err != nil {
			return // parsed but outside the compiled fragment
		}
		doc := fuzzDoc(prog)

		nodes, err := baseline.EvalReader(baseline.TreeWalk{}, strings.NewReader(doc), expr)
		if err != nil {
			t.Fatalf("oracle failed on generated doc %q: %v", doc, err)
		}
		want := int64(len(nodes))

		type engine struct {
			name string
			mk   func() (interface {
				Run(src xmlstream.Source) error
				Matches() map[string]int64
			}, error)
		}
		sub := func() []multi.Subscription {
			return []multi.Subscription{{Name: "q", Plan: plan}}
		}
		engines := []engine{
			{"sequential", func() (interface {
				Run(src xmlstream.Source) error
				Matches() map[string]int64
			}, error) {
				return multi.NewSet(sub())
			}},
			{"shared", func() (interface {
				Run(src xmlstream.Source) error
				Matches() map[string]int64
			}, error) {
				return multi.NewSharedSet(sub())
			}},
			{"parallel", func() (interface {
				Run(src xmlstream.Source) error
				Matches() map[string]int64
			}, error) {
				return multi.NewParallelSet(sub(), multi.ParallelOptions{Shards: 2, BatchSize: 3})
			}},
			{"merged", func() (interface {
				Run(src xmlstream.Source) error
				Matches() map[string]int64
			}, error) {
				return multi.NewMergedSet(sub())
			}},
		}
		for _, e := range engines {
			eng, err := e.mk()
			if err != nil {
				t.Fatalf("%s: building engine for %q: %v", e.name, query, err)
			}
			src := xmlstream.NewScanner(strings.NewReader(doc), xmlstream.WithText(false))
			if err := eng.Run(src); err != nil {
				t.Fatalf("%s: %q over %q: %v", e.name, query, doc, err)
			}
			if got := eng.Matches()["q"]; got != want {
				t.Fatalf("%s diverges from the DOM oracle on %q over %q: %d matches, oracle %d",
					e.name, query, doc, got, want)
			}
		}
		// Parallel chunk-scan ingest arm: the stitched event stream must
		// drive an engine to the oracle's counts too. Split targets are
		// fuzzed from the program bytes, so boundary choices land inside
		// tags, attribute values and text runs at the splitter's discretion.
		if n := len(doc); n > 1 {
			h := uint64(n) * 0x9E3779B97F4A7C15
			for _, c := range prog {
				h = (h ^ uint64(c)) * 0x100000001B3
			}
			var targets []int
			for k := 0; k < 1+int(h%3); k++ {
				h ^= h >> 12
				h ^= h << 25
				h ^= h >> 27
				targets = append(targets, int((h*0x2545F4914F6CDD1D)%uint64(n)))
			}
			eng, err := multi.NewSet(sub())
			if err != nil {
				t.Fatalf("parallel-scan: building engine for %q: %v", query, err)
			}
			src := xmlstream.NewParallelScannerAt([]byte(doc), targets, xmlstream.WithText(false))
			if err := eng.Run(src); err != nil {
				t.Fatalf("parallel-scan: %q over %q at %v: %v", query, doc, targets, err)
			}
			if got := eng.Matches()["q"]; got != want {
				t.Fatalf("parallel-scan ingest diverges from the DOM oracle on %q over %q at %v: %d matches, oracle %d",
					query, doc, targets, got, want)
			}
		}
	})
}
