package spex

import (
	"errors"
	"strings"
	"testing"
)

// govChainDoc nests n <a> elements, each receiving its <b/> child as its
// LAST child — every open a stays an undecided candidate of _+[b] until its
// subtree closes, so the candidate population reaches n mid-stream.
func govChainDoc(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString("<a>")
	}
	for i := 0; i < n; i++ {
		sb.WriteString("<b/></a>")
	}
	return sb.String()
}

func TestWithResourceLimitsFail(t *testing.T) {
	q := MustCompile("_+[b]")
	_, err := q.Count(strings.NewReader(govChainDoc(32)),
		WithResourceLimits(ResourceLimits{MaxCandidates: 5}, PolicyFail))
	if err == nil {
		t.Fatal("governed Count: no error, want candidate limit trip")
	}
	if !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("error %v does not match ErrResourceLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error %v is not a *LimitError", err)
	}
	if got := le.Resource.String(); got != "candidates" {
		t.Fatalf("LimitError.Resource = %q, want %q", got, "candidates")
	}
}

func TestWithResourceLimitsDegradeKeepsCounts(t *testing.T) {
	q := MustCompile("_+[b]")
	want, err := q.Count(strings.NewReader(govChainDoc(24)))
	if err != nil {
		t.Fatalf("ungoverned Count: %v", err)
	}
	got, err := q.Count(strings.NewReader(govChainDoc(24)),
		WithResourceLimits(ResourceLimits{MaxCandidates: 3}, PolicyDegrade))
	if err != nil {
		t.Fatalf("degraded Count: %v", err)
	}
	if got != want {
		t.Fatalf("degraded Count = %d, want the ungoverned %d", got, want)
	}
}

func TestSetGovernedAllEngines(t *testing.T) {
	engines := []struct {
		name string
		opt  SetOption
	}{
		{"sequential", Sequential()},
		{"shared", Shared()},
		{"parallel", Parallel(2)},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			set := NewSet([]*Query{MustCompile("_+[b]")}, nil,
				eng.opt, Governed(ResourceLimits{MaxCandidates: 4}, PolicyFail))
			err := set.Evaluate(strings.NewReader(govChainDoc(32)))
			if err == nil {
				t.Fatal("governed Evaluate: no error, want candidate limit trip")
			}
			if !errors.Is(err, ErrResourceLimit) {
				t.Fatalf("error %v does not match ErrResourceLimit", err)
			}
		})
	}
}

func TestSetGovernedShedDropsOnlyTrippingQuery(t *testing.T) {
	m := NewMetrics()
	set := NewSet([]*Query{MustCompile("_+[b]"), MustCompile("a")}, nil,
		Shared(),
		Governed(ResourceLimits{MaxCandidates: 4}, PolicyShed),
		SetMetrics(m))
	if err := set.Evaluate(strings.NewReader(govChainDoc(32))); err != nil {
		t.Fatalf("shed-policy Evaluate: %v", err)
	}
	counts := set.Counts()
	if counts[1] != 1 {
		t.Fatalf("unaffected query counted %d answers, want 1", counts[1])
	}
	snap := m.Snapshot()
	if snap.GovernorSheds == 0 {
		t.Fatal("SetMetrics registry recorded no governor sheds")
	}
}
