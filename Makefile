GO ?= go

.PHONY: check fmt vet build test race bench

## check: the full gate — formatting, vet, build, tests under the race detector
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one testing.B series per paper figure plus the ablations
bench:
	$(GO) test -run NONE -bench . -benchmem .
