GO ?= go
FUZZTIME ?= 15s
BENCH_DIR ?= bench-out
COVER_MIN ?= 78.0

.PHONY: check fmt vet build test race bench cover fuzz-smoke bench-smoke bench-delta ingest-race serve-smoke metrics-lint vuln

## check: the full gate — formatting, vet, build, tests under the race
## detector, and the metrics-name lint
check: fmt vet build race metrics-lint

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## cover: full-suite coverage with the recorded floor (COVER_MIN); the
## profile lands in coverage.out for the CI artifact
cover:
	$(GO) test -count 1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub("%","",$$3); print $$3 }'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t=$$total -v m=$(COVER_MIN) 'BEGIN { exit t+0 < m+0 ? 1 : 0 }' \
		|| { echo "coverage $$total% fell below the $(COVER_MIN)% floor"; exit 1; }

## bench: one testing.B series per paper figure plus the ablations
bench:
	$(GO) test -run NONE -bench . -benchmem .

## fuzz-smoke: run every fuzz target briefly; crashers land under testdata/fuzz
fuzz-smoke:
	$(GO) test -run NONE -fuzz 'FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/rpeq
	$(GO) test -run NONE -fuzz 'FuzzParseXPath$$' -fuzztime $(FUZZTIME) ./internal/rpeq
	$(GO) test -run NONE -fuzz 'FuzzScanner$$' -fuzztime $(FUZZTIME) ./internal/xmlstream
	$(GO) test -run NONE -fuzz 'FuzzCondNormalize$$' -fuzztime $(FUZZTIME) ./internal/cond
	$(GO) test -run NONE -fuzz 'FuzzEngineEquivalence$$' -fuzztime $(FUZZTIME) .

## bench-smoke: tiny-scale harness runs with the zero-answer shape check,
## writing machine-readable BENCH_*.json reports into $(BENCH_DIR); also
## gates the symbol pipeline — the count-mode hot loop must stay
## allocation-free and the interning ablation must run end to end
bench-smoke:
	mkdir -p $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig 14 -scale 0.1 -check -json $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig 15 -scale 0.02 -check -json $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig sdi -scale 0.01 -check -json $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig sdi-shared -scale 0.005 -check -json $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig adversarial -scale 0.01 -check -json $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig obs-overhead -scale 0.05 -max-overhead 10 -check -json $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig early-term -scale 0.02 -check -json $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig value-pred -scale 0.1 -check -json $(BENCH_DIR)
	$(GO) run ./cmd/spexbench -fig ingest -scale 0.05 -check -json $(BENCH_DIR)
	$(GO) test -run 'TestCountModeZeroAlloc$$' -count 1 .
	$(GO) test -run 'TestIngestZeroAlloc$$' -count 1 ./internal/xmlstream
	$(GO) test -run NONE -bench 'BenchmarkAblationInterning$$' -benchtime 1x .

## bench-delta: benchstat-style comparison of $(BENCH_DIR) against a
## previous run's reports in $(BENCH_PREV). With DELTA_MAX > 0 it is a
## regression gate: a SPEX DMOZ qualifier workload slowing down by more than
## DELTA_MAX percent fails the target; a missing $(BENCH_PREV) (first run,
## expired cache) only warns, so a cache miss cannot block CI.
BENCH_PREV ?= bench-prev
DELTA_MAX ?= 10
bench-delta:
	$(GO) run ./cmd/spexbench -json $(BENCH_DIR) -delta $(BENCH_PREV) -delta-max $(DELTA_MAX)

## ingest-race: the ingest lockdown under the race detector — the
## seed-vs-zerocopy-vs-parallel differential harness, the chunk-scan
## stitcher (including fuzz seed corpora), accounting parity, and the
## server's mmap side-load route, all with concurrency checking on
ingest-race:
	$(GO) test -race -count 1 \
		-run 'TestDifferential|TestParallel|TestIngest|TestScannerAccounting|TestOpenFile|FuzzScanner' \
		./internal/xmlstream
	$(GO) test -race -count 1 -run 'TestSideload' ./internal/server
	$(GO) test -race -count 1 -run 'TestEvaluateBytes|TestParallelScan' .

## serve-smoke: boot a real spexd, drive subscribe → ingest → NDJSON result
## with curl against the Fig. 1 document, then check a clean SIGTERM drain
serve-smoke:
	mkdir -p $(BENCH_DIR)
	scripts/serve_smoke.sh $(BENCH_DIR)/spexd

## metrics-lint: every exported spex_* metric name must be documented in the
## README's metrics table
metrics-lint:
	scripts/metrics_lint.sh

## vuln: known-vulnerability scan of the module and its (stdlib-only) deps
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...
