// Command spexd is the SPEX streaming query daemon: a long-lived HTTP
// service where clients register standing RPEQ or XPath subscriptions on
// named channels, stream XML documents into them, and receive progressive
// answers as NDJSON frames.
//
//	spexd -addr 127.0.0.1:8080 -engine shared
//
// The API:
//
//	POST   /v1/subscriptions               register a query  → subscription id
//	GET    /v1/subscriptions/{id}          subscription info
//	DELETE /v1/subscriptions/{id}          unregister
//	GET    /v1/subscriptions/{id}/results  NDJSON result stream (one frame per hit)
//	POST   /v1/channels/{ch}/ingest        stream an XML document into a channel
//	GET    /v1/channels                    list channels
//	GET    /healthz, /readyz, /metrics     liveness, readiness, Prometheus
//
// SIGINT/SIGTERM drain gracefully: new requests get 503 + Retry-After,
// in-flight sessions finish (bounded by -drain-timeout), result streams
// flush and end, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	spex "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spexd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, separated from main so tests can drive it with a
// cancellable context and capture its output.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spexd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address")
		engine       = fs.String("engine", "", "default channel engine: sequential, shared (default) or parallel[:shards]")
		maxChannels  = fs.Int("max-channels", 0, "max named channels (0 = default, <0 = unlimited)")
		maxSubs      = fs.Int("max-subscriptions", 0, "max subscriptions process-wide")
		maxChanSubs  = fs.Int("max-channel-subscriptions", 0, "max subscriptions per channel")
		maxSessions  = fs.Int("max-sessions", 0, "max concurrent ingest sessions")
		maxInflight  = fs.Int64("max-inflight-bytes", 0, "max summed in-flight ingest bytes")
		maxDoc       = fs.Int64("max-document-bytes", 0, "max single ingest document size (0 = unlimited)")
		subBuffer    = fs.Int("sub-buffer", 0, "per-subscription result frame buffer")
		ingestTO     = fs.Duration("ingest-timeout", 0, "per-ingest deadline (0 = none)")
		govFormula   = fs.Int("gov-max-formula", 0, "governor: max condition-formula size per evaluation (0 = unlimited)")
		govCand      = fs.Int("gov-max-candidates", 0, "governor: max undecided answer candidates per query (0 = unlimited)")
		govBuffered  = fs.Int("gov-max-buffered", 0, "governor: max buffered result events per query (0 = unlimited)")
		govStepMsgs  = fs.Int("gov-max-step-messages", 0, "governor: max transducer messages per stream event (0 = unlimited)")
		govLiveVars  = fs.Int("gov-max-live-vars", 0, "governor: max live condition variables (0 = unlimited)")
		govDepth     = fs.Int("gov-max-depth", 0, "governor: max document nesting depth (0 = unlimited)")
		govPolicy    = fs.String("gov-policy", "fail", "governor trip policy: fail (429), degrade (count-only) or shed (drop query)")
		slowMs       = fs.Int("slow-ms", 0, "record ingests slower than this (ms) in the /debug/spex slow-stream ring (0 = off)")
		sideload     = fs.String("sideload", "", "enable POST /v1/channels/{channel}/sideload for files under this directory (mmap + zero-copy ingest)")
		drainTO      = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain deadline")
		readHeaderTO = fs.Duration("read-header-timeout", 5*time.Second, "http server read-header timeout")
		idleTO       = fs.Duration("idle-timeout", 120*time.Second, "http server idle-connection timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	srv, err := server.New(server.Config{
		Limits: server.Limits{
			MaxChannels:                *maxChannels,
			MaxSubscriptions:           *maxSubs,
			MaxSubscriptionsPerChannel: *maxChanSubs,
			MaxSessions:                *maxSessions,
			MaxInflightBytes:           *maxInflight,
			MaxDocumentBytes:           *maxDoc,
			SubscriptionBuffer:         *subBuffer,
			IngestTimeout:              *ingestTO,
			Governor: spex.ResourceLimits{
				MaxFormulaSize:    *govFormula,
				MaxCandidates:     *govCand,
				MaxBufferedEvents: *govBuffered,
				MaxStepMessages:   *govStepMsgs,
				MaxLiveVars:       *govLiveVars,
				MaxDepth:          *govDepth,
			},
			GovernorPolicy: *govPolicy,
		},
		DefaultEngine: *engine,
		EngineMetrics: obs.NewMetrics(),
		Logf:          logf,
		SlowThreshold: time.Duration(*slowMs) * time.Millisecond,
		SideloadDir:   *sideload,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// No blanket ReadTimeout: ingest bodies stream for as long as the
		// session limits allow. Header reads and idle connections are
		// bounded.
		ReadHeaderTimeout: *readHeaderTO,
		IdleTimeout:       *idleTO,
	}
	logf("spexd: listening on http://%s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: drain sessions and flush result streams first,
	// then close the listener (so the streams have ended and Shutdown
	// doesn't wait on them as active connections).
	logf("spexd: signal received, draining (deadline %s)", *drainTO)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("spexd: listener shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	logf("spexd: shut down cleanly")
	return nil
}
