package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

// syncBuffer lets the test read the daemon's stderr while run writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonLifecycle boots spexd on an ephemeral port, drives it through a
// subscribe → results → ingest round trip with the Go client, and shuts it
// down with a context cancellation standing in for SIGTERM.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-engine", "shared", "-drain-timeout", "5s"}, &errOut, &errOut)
	}()

	// The daemon prints its resolved address once the listener is up.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not announce its address; stderr:\n%s", errOut.String())
		}
		for _, line := range strings.Split(errOut.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "spexd: listening on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	c := client.New(base, nil)
	if !c.Healthy(ctx) || !c.Ready(ctx) {
		t.Fatalf("daemon not healthy/ready at %s", base)
	}
	info, err := c.Subscribe(ctx, server.SubscribeRequest{Channel: "ch", Query: `_*.a[b].c`})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	frames := make(chan server.Frame, 4)
	readerDone := make(chan error, 1)
	go func() {
		readerDone <- c.Results(context.Background(), info.ID, func(f server.Frame) error {
			frames <- f
			return nil
		})
	}()
	sum, err := c.IngestString(ctx, "ch", `<a><a><c>first</c></a><b/><c>second</c></a>`)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if sum.Matches != 1 {
		t.Errorf("matches = %d, want 1", sum.Matches)
	}
	select {
	case f := <-frames:
		if f.Index != 5 || f.Name != "c" {
			t.Errorf("frame = (%d,%q), want (5,\"c\")", f.Index, f.Name)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no result frame arrived")
	}

	// "SIGTERM": the daemon drains and exits cleanly; the result stream
	// ends without error.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not exit; stderr:\n%s", errOut.String())
	}
	select {
	case err := <-readerDone:
		if err != nil {
			t.Errorf("result stream at shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Errorf("result stream did not end at shutdown")
	}
	if !strings.Contains(errOut.String(), "shut down cleanly") {
		t.Errorf("stderr missing clean-shutdown line:\n%s", errOut.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-engine", "warp"}, &out, &out); err == nil {
		t.Errorf("bad engine accepted")
	}
	if err := run(context.Background(), []string{"stray"}, &out, &out); err == nil {
		t.Errorf("stray argument accepted")
	}
}
