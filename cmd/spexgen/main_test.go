package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xmlstream"
)

func TestGenInfo(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "mondial", "-scale", "0.1", "-info"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset=mondial") || !strings.Contains(out.String(), "maxdepth=5") {
		t.Fatalf("info output: %q", out.String())
	}
}

func TestGenDocumentIsWellFormed(t *testing.T) {
	for _, name := range []string{"wordnet", "random", "recursive", "ladder"} {
		var out, errBuf bytes.Buffer
		args := []string{"-dataset", name, "-scale", "0.005", "-depth", "10"}
		if err := run(args, &out, &errBuf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := xmlstream.Measure(xmlstream.NewScanner(bytes.NewReader(out.Bytes()))); err != nil {
			t.Errorf("%s output not well formed: %v", name, err)
		}
	}
}

func TestGenUnknownDataset(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, &out, &errBuf); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestGenToFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/out.xml"
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "recursive", "-depth", "3", "-o", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("stdout should be empty when -o is used, got %q", out.String())
	}
}

func TestGenAdversarial(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-adversarial", "deep", "-n", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.String() != "<a><a><a><b></b></a></a></a>" {
		t.Fatalf("deep -n 3: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-adversarial", "list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shape=qualbomb") {
		t.Fatalf("adversarial list: %q", out.String())
	}
	if err := run([]string{"-adversarial", "nope"}, &out, &errBuf); err == nil {
		t.Fatal("unknown adversarial shape accepted")
	}
}

func TestGenSubscriptionCorpus(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-subs", "20", "-overlap", "0.6"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 20 {
		t.Fatalf("got %d queries, want 20: %q", len(lines), out.String())
	}
	// Deterministic: the same flags emit the same corpus.
	var again bytes.Buffer
	if err := run([]string{"-subs", "20", "-overlap", "0.6"}, &again, &errBuf); err != nil {
		t.Fatal(err)
	}
	if again.String() != out.String() {
		t.Fatal("corpus not deterministic")
	}
	// A different seed emits a different corpus.
	var other bytes.Buffer
	if err := run([]string{"-subs", "20", "-overlap", "0.6", "-seed", "99"}, &other, &errBuf); err != nil {
		t.Fatal(err)
	}
	if other.String() == out.String() {
		t.Fatal("seed has no effect on the corpus")
	}
	if err := run([]string{"-subs", "5", "-overlap", "1.5"}, &out, &errBuf); err == nil {
		t.Fatal("out-of-range overlap accepted")
	}
}
