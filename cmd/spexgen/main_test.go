package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xmlstream"
)

func TestGenInfo(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "mondial", "-scale", "0.1", "-info"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dataset=mondial") || !strings.Contains(out.String(), "maxdepth=5") {
		t.Fatalf("info output: %q", out.String())
	}
}

func TestGenDocumentIsWellFormed(t *testing.T) {
	for _, name := range []string{"wordnet", "random", "recursive", "ladder"} {
		var out, errBuf bytes.Buffer
		args := []string{"-dataset", name, "-scale", "0.005", "-depth", "10"}
		if err := run(args, &out, &errBuf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := xmlstream.Measure(xmlstream.NewScanner(bytes.NewReader(out.Bytes()))); err != nil {
			t.Errorf("%s output not well formed: %v", name, err)
		}
	}
}

func TestGenUnknownDataset(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, &out, &errBuf); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestGenToFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/out.xml"
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "recursive", "-depth", "3", "-o", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("stdout should be empty when -o is used, got %q", out.String())
	}
}

func TestGenAdversarial(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-adversarial", "deep", "-n", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if out.String() != "<a><a><a><b></b></a></a></a>" {
		t.Fatalf("deep -n 3: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-adversarial", "list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shape=qualbomb") {
		t.Fatalf("adversarial list: %q", out.String())
	}
	if err := run([]string{"-adversarial", "nope"}, &out, &errBuf); err == nil {
		t.Fatal("unknown adversarial shape accepted")
	}
}
