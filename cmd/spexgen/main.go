// Command spexgen generates the synthetic evaluation documents (stand-ins
// for MONDIAL, WordNet and DMOZ; see DESIGN.md §3) to stdout or a file.
//
// Usage:
//
//	spexgen -dataset mondial -scale 1 > mondial.xml
//	spexgen -dataset dmoz-structure -scale 1 -o dmoz.xml
//	spexgen -dataset tickets -scale 1 > tickets.xml   # attribute-bearing corpus (E20)
//	spexgen -dataset random -seed 7 -depth 6
//	spexgen -dataset recursive -depth 500
//	spexgen -info -dataset wordnet -scale 1
//
// Adversarial shapes (the resource-governor attack corpus; see DESIGN.md
// §9) are selected with -adversarial and sized with -n:
//
//	spexgen -adversarial deep -n 10000 > deep.xml
//	spexgen -adversarial fanout-late -n 100000 | spexbench ...
//	spexgen -adversarial list
//
// Subscription corpora (the overlapping query sets the sdi-shared figure
// and the merged engine consume) are selected with -subs, one query per
// line; -overlap tunes how often a query derives from an earlier one:
//
//	spexgen -subs 256 -overlap 0.6 > corpus.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spexgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spexgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name  = fs.String("dataset", "mondial", "dataset: mondial, wordnet, dmoz-structure, dmoz-content, tickets, random, recursive, ladder")
		scale = fs.Float64("scale", 1, "size multiplier; 1 approximates the paper's document")
		seed  = fs.Uint64("seed", 1, "seed for -dataset random")
		depth = fs.Int("depth", 6, "depth for random/recursive/ladder documents")
		out   = fs.String("o", "", "output file (default stdout)")
		info  = fs.Bool("info", false, "print element count and depth instead of the document")
		adv   = fs.String("adversarial", "", "adversarial shape: deep, fanout, fanout-late, qualbomb, emptyrun; or list")
		n     = fs.Int("n", 0, "size of the adversarial shape (0 = the golden-corpus size)")
		nsubs = fs.Int("subs", 0, "emit an overlapping subscription corpus of this many queries, one per line, instead of a document")
		ovlp  = fs.Float64("overlap", bench.SDISharedOverlap, "with -subs: probability that a query derives from an earlier one (duplicate, equivalent rephrasing, contained narrowing, or shared spine)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *nsubs > 0 {
		return emitSubs(*nsubs, *ovlp, int64(*seed), *out, stdout)
	}

	var doc *dataset.Doc
	if *adv != "" {
		if *adv == "list" {
			for _, c := range dataset.Adversarial() {
				fmt.Fprintf(stdout, "shape=%s size=%d query=%s want=%d\n", c.Doc.Name, c.Size, c.Query, c.Want)
			}
			return nil
		}
		var err error
		if doc, err = adversarialDoc(*adv, *n); err != nil {
			return err
		}
		return emit(doc, *info, *out, stdout)
	}
	switch *name {
	case "random":
		doc = dataset.RandomTree(*seed, *depth, 4, nil)
	case "recursive":
		doc = dataset.Recursive("a", *depth)
	case "ladder":
		doc = dataset.Ladder(*depth)
	default:
		doc = bench.Dataset(*name, *scale)
		if doc == nil {
			return fmt.Errorf("unknown dataset %q", *name)
		}
	}

	return emit(doc, *info, *out, stdout)
}

// adversarialDoc builds one adversarial shape; n of zero selects the size
// the golden corpus pins.
func adversarialDoc(shape string, n int) (*dataset.Doc, error) {
	size := func(d int) int {
		if n > 0 {
			return n
		}
		return d
	}
	switch shape {
	case "deep":
		return dataset.Deep(size(10_000)), nil
	case "fanout":
		return dataset.Fanout(size(1_000_000)), nil
	case "fanout-late":
		return dataset.FanoutLate(size(100_000)), nil
	case "qualbomb":
		return dataset.QualBomb(size(5_000)), nil
	case "emptyrun":
		return dataset.EmptyRun(size(1_000_000)), nil
	default:
		return nil, fmt.Errorf("unknown adversarial shape %q (want deep, fanout, fanout-late, qualbomb, emptyrun or list)", shape)
	}
}

// emitSubs writes an overlapping subscription corpus, one query per line.
func emitSubs(n int, overlap float64, seed int64, out string, stdout io.Writer) error {
	if overlap < 0 || overlap > 1 {
		return fmt.Errorf("-overlap must be in [0,1], got %g", overlap)
	}
	var w io.Writer = stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	for _, q := range bench.SharedSubscriptions(n, overlap, seed) {
		if _, err := fmt.Fprintln(w, q); err != nil {
			return err
		}
	}
	return nil
}

// emit writes the document (or its measurements) to the selected output.
func emit(doc *dataset.Doc, info bool, out string, stdout io.Writer) error {
	if info {
		i := doc.Info()
		fmt.Fprintf(stdout, "dataset=%s elements=%d maxdepth=%d events=%d\n",
			doc.Name, i.Elements, i.MaxDepth, i.Events)
		return nil
	}
	var w io.Writer = stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		w = bw
	}
	_, err := doc.WriteTo(w)
	return err
}
