// Command spexgen generates the synthetic evaluation documents (stand-ins
// for MONDIAL, WordNet and DMOZ; see DESIGN.md §3) to stdout or a file.
//
// Usage:
//
//	spexgen -dataset mondial -scale 1 > mondial.xml
//	spexgen -dataset dmoz-structure -scale 1 -o dmoz.xml
//	spexgen -dataset random -seed 7 -depth 6
//	spexgen -dataset recursive -depth 500
//	spexgen -info -dataset wordnet -scale 1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spexgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spexgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name  = fs.String("dataset", "mondial", "dataset: mondial, wordnet, dmoz-structure, dmoz-content, random, recursive, ladder")
		scale = fs.Float64("scale", 1, "size multiplier; 1 approximates the paper's document")
		seed  = fs.Uint64("seed", 1, "seed for -dataset random")
		depth = fs.Int("depth", 6, "depth for random/recursive/ladder documents")
		out   = fs.String("o", "", "output file (default stdout)")
		info  = fs.Bool("info", false, "print element count and depth instead of the document")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var doc *dataset.Doc
	switch *name {
	case "random":
		doc = dataset.RandomTree(*seed, *depth, 4, nil)
	case "recursive":
		doc = dataset.Recursive("a", *depth)
	case "ladder":
		doc = dataset.Ladder(*depth)
	default:
		doc = bench.Dataset(*name, *scale)
		if doc == nil {
			return fmt.Errorf("unknown dataset %q", *name)
		}
	}

	if *info {
		i := doc.Info()
		fmt.Fprintf(stdout, "dataset=%s scale=%g elements=%d maxdepth=%d events=%d\n",
			doc.Name, *scale, i.Elements, i.MaxDepth, i.Events)
		return nil
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		w = bw
	}
	_, err := doc.WriteTo(w)
	return err
}
