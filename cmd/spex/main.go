// Command spex evaluates a regular path expression with qualifiers against
// an XML document, streaming: the input is processed in one pass and
// results are printed progressively.
//
// Usage:
//
//	spex -q '_*.country[province].name' [flags] [file.xml]
//	cat doc.xml | spex -q 'a.b'
//
// Flags:
//
//	-q expr    the query (rpeq syntax; required unless -cq is given)
//	-xpath     interpret -q as the XPath fragment (//a/b[c])
//	-cq query  a conjunctive query, e.g. 'q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3'
//	-count     print only the number of answers
//	-nodes     print answer positions (index and label) instead of XML
//	-stats     print evaluation statistics to stderr, including a
//	           per-transducer table (messages by kind, stack, formula size)
//	-trace     print the transition trace to stderr: which transducer emits
//	           which activation/determination at which stream event — the
//	           traces the paper walks through in Figs. 4, 5 and 13
//	-trace-kind  message kinds to trace (doc,act,det; default act,det)
//	-trace-node  only trace transducers whose name contains a substring
//	-window N  evaluate in windows of N top-level records (see §I of the
//	           paper on the exactness caveat of windows)
//	-engine E  evaluate through the multi-query engine the spexd server
//	           uses: sequential, shared or parallel[:shards] (requires
//	           -count or -nodes)
//	-file F    evaluate file F through the mmap + zero-copy ingest fast
//	           path: the document is mapped read-only and scanned in place,
//	           with no per-event allocation
//	-pscan N   with -file: tokenize with the parallel chunk scanner on N
//	           workers (negative = one per CPU); the stitched event stream
//	           is identical to a serial scan's
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	spex "repro"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/spexnet"
	"repro/internal/window"
	"repro/internal/xmlstream"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spex:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spex", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		query     = fs.String("q", "", "rpeq query, e.g. '_*.a[b].c'")
		xpath     = fs.Bool("xpath", false, "interpret -q as an XPath-fragment query")
		conjunct  = fs.String("cq", "", "conjunctive query, e.g. 'q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3'")
		count     = fs.Bool("count", false, "print only the number of answers")
		nodes     = fs.Bool("nodes", false, "print answer positions instead of XML")
		stats     = fs.Bool("stats", false, "print evaluation statistics to stderr")
		trace     = fs.Bool("trace", false, "print the transition trace (Figs. 4/5/13) to stderr")
		traceKind = fs.String("trace-kind", "act,det", "message kinds to trace: doc,act,det (empty = all)")
		traceNode = fs.String("trace-node", "", "only trace transducers whose name contains one of these comma-separated substrings")
		traceID   = fs.String("trace-id", "", "stream trace id stamped on every -trace record (correlates runs in shared logs)")
		windowN   = fs.Int("window", 0, "evaluate in windows of N top-level records (0 = exact whole-stream evaluation)")
		engine    = fs.String("engine", "", "evaluate through the multi-query engine: sequential, shared or parallel[:shards] (requires -count or -nodes)")
		file      = fs.String("file", "", "evaluate this file through the mmap + zero-copy ingest fast path (no positional file or stdin)")
		pscan     = fs.Int("pscan", 0, "with -file: parallel chunk-scan worker count (0 = serial zero-copy scan, negative = one per CPU)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	plan, err := preparePlan(*query, *xpath, *conjunct)
	if err != nil {
		return err
	}

	in := stdin
	// doc is the mmap'd (or slurped) -file document; docSrc builds a fresh
	// zero-copy or parallel chunk-scan source over it.
	var doc *xmlstream.Doc
	docSrc := func(opts ...xmlstream.ScannerOption) xmlstream.Source {
		if *pscan != 0 {
			return xmlstream.NewParallelScanner(doc.Data(), *pscan, opts...)
		}
		return xmlstream.ScanBytes(doc.Data(), opts...)
	}
	if *file != "" {
		if fs.NArg() > 0 {
			return fmt.Errorf("-file and a positional input file are mutually exclusive")
		}
		doc, err = xmlstream.OpenFile(*file)
		if err != nil {
			return err
		}
		defer doc.Close()
	} else if *pscan != 0 {
		return fmt.Errorf("-pscan requires -file (splitting needs the whole document in memory)")
	}
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}

	out := bufio.NewWriter(stdout)
	defer out.Flush()

	if *engine != "" {
		if *trace || *stats || *windowN > 0 || *conjunct != "" {
			return fmt.Errorf("-engine cannot combine with -trace, -stats, -window or -cq")
		}
		if !*count && !*nodes {
			return fmt.Errorf("-engine requires -count or -nodes (the multi-query engines report answer positions, not subtrees)")
		}
		return runEngine(*engine, *query, *xpath, in, doc, *pscan, out, *count)
	}

	if *windowN > 0 {
		wsrc := xmlstream.Source(xmlstream.NewScanner(in))
		if doc != nil {
			wsrc = docSrc()
			if st, ok := wsrc.(interface{ Stop() }); ok {
				defer st.Stop() // release chunk workers if the pass errors out early
			}
		}
		wstats, err := window.Evaluate(plan, wsrc, *windowN,
			func(widx int, r spexnet.Result) {
				if !*count {
					fmt.Fprintf(out, "window %d\t%d\t%s\n", widx, r.Index, r.Name)
				}
			})
		if err != nil {
			return err
		}
		if *count {
			fmt.Fprintln(out, wstats.Matches)
		}
		if *stats {
			fmt.Fprintf(stderr, "windows=%d records=%d matches=%d\n", wstats.Windows, wstats.Records, wstats.Matches)
		}
		return nil
	}

	mode := spexnet.ModeSerialize
	if *count {
		mode = spexnet.ModeCount
	} else if *nodes {
		mode = spexnet.ModeNodes
	}
	sink := func(r spexnet.Result) {
		if *nodes {
			fmt.Fprintf(out, "%d\t%s\n", r.Index, r.Name)
			return
		}
		for _, ev := range r.Events {
			writeEvent(out, ev)
		}
		out.WriteByte('\n')
	}
	opts := core.EvalOptions{Mode: mode, Sink: sink, TraceID: *traceID}

	// The trace renders one line per transducer emission, labelled with the
	// stream event of the step it happened in — the layout of the paper's
	// Fig. 13 walk-through. The event column is maintained by the drive loop
	// below, which feeds one event at a time for exactly this reason.
	var curEvent string
	if *trace {
		filter, err := parseTraceFilter(*traceKind, *traceNode)
		if err != nil {
			return err
		}
		opts.Tracer = obs.FilterTracer(obs.TracerFunc(func(ev obs.TraceEvent) {
			fmt.Fprintf(stderr, "%4d  %-6s  %-8s  %s\n", ev.Step, curEvent, ev.Node, ev.Msg)
		}), filter)
	}
	var metrics *obs.Metrics
	if *stats {
		metrics = obs.NewMetrics()
		opts.Metrics = metrics
	}

	evalRun, err := plan.NewRun(opts)
	if err != nil {
		return err
	}
	var src xmlstream.Source = xmlstream.NewScanner(in)
	if doc != nil {
		src = docSrc(xmlstream.WithSymtab(plan.Symtab()))
		if st, ok := src.(interface{ Stop() }); ok {
			defer st.Stop() // release chunk workers if the pass errors out early
		}
	}
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		curEvent = ev.String()
		if err := evalRun.Feed(ev); err != nil {
			return err
		}
	}
	if err := evalRun.Close(); err != nil {
		return err
	}
	st := evalRun.Stats()
	if *count {
		fmt.Fprintln(out, st.Output.Matches)
	}
	if *stats {
		fmt.Fprintf(stderr, "events=%d elements=%d depth=%d transducers=%d maxstack=%d maxformula=%d matches=%d candidates=%d dropped=%d\n",
			st.Events, st.Elements, st.MaxDepth, st.Transducers, st.MaxStack, st.MaxFormula,
			st.Output.Matches, st.Output.Candidates, st.Output.Dropped)
		if is, ok := src.(interface{ IngestStats() xmlstream.IngestStats }); ok {
			ist := is.IngestStats()
			fmt.Fprintf(stderr, "ingest: mmap=%v chunks=%d arena_bytes=%d arena_blocks=%d arena_attrs=%d buffer_bytes=%d\n",
				doc != nil && doc.Mapped(), ist.Chunks, ist.ArenaBytes, ist.ArenaBlocks, ist.ArenaAttrs, ist.BufferBytes)
		}
		writeTransducerTable(stderr, evalRun.Snapshot())
	}
	return nil
}

// runEngine evaluates the query through the same engine selection the
// server's channels use (spex.Set on sequential, shared or parallel), so
// the CLI can sanity-check an engine against the plain evaluator.
func runEngine(sel, query string, xpath bool, in io.Reader, doc *xmlstream.Doc, pscan int, out *bufio.Writer, countOnly bool) error {
	eng, err := server.ParseEngine(sel)
	if err != nil {
		return err
	}
	var q *spex.Query
	if xpath {
		q, err = spex.CompileXPath(query)
	} else {
		q, err = spex.Compile(query)
	}
	if err != nil {
		return err
	}
	setOpts := []spex.SetOption{eng.Option()}
	if pscan != 0 {
		setOpts = append(setOpts, spex.ParallelScan(pscan))
	}
	set := spex.NewSet([]*spex.Query{q}, func(_ int, m spex.Match) {
		if !countOnly {
			fmt.Fprintf(out, "%d\t%s\n", m.Index, m.Name)
		}
	}, setOpts...)
	if doc != nil {
		err = set.EvaluateBytes(doc.Data())
	} else {
		err = set.Evaluate(in)
	}
	if err != nil {
		return err
	}
	if countOnly {
		fmt.Fprintln(out, set.Counts()[0])
	}
	return nil
}

// parseTraceFilter builds the trace filter from the -trace-kind and
// -trace-node flag values (comma-separated; empty lists mean "all").
func parseTraceFilter(kinds, nodes string) (obs.TraceFilter, error) {
	var f obs.TraceFilter
	for _, k := range strings.Split(kinds, ",") {
		switch strings.TrimSpace(k) {
		case "":
		case "doc":
			f.Kinds = append(f.Kinds, obs.KindDoc)
		case "act":
			f.Kinds = append(f.Kinds, obs.KindActivation)
		case "det":
			f.Kinds = append(f.Kinds, obs.KindDetermination)
		default:
			return f, fmt.Errorf("unknown -trace-kind %q (want doc, act or det)", k)
		}
	}
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			f.Nodes = append(f.Nodes, n)
		}
	}
	return f, nil
}

// writeTransducerTable renders the per-transducer instruments: message
// counts by direction and kind, and the stack/formula maxima Lemma V.2
// bounds by the depth d and the formula size o(φ).
func writeTransducerTable(w io.Writer, s obs.Snapshot) {
	if !s.Enabled || len(s.Transducers) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "transducer\tin doc\tin act\tin det\tout doc\tout act\tout det\tmax stack\tmax formula\t")
	for _, t := range s.Transducers {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			t.Name, t.InDoc, t.InAct, t.InDet, t.OutDoc, t.OutAct, t.OutDet, t.MaxStack, t.MaxFormula)
	}
	tw.Flush()
}

func preparePlan(query string, xpath bool, conjunct string) (*core.Plan, error) {
	switch {
	case conjunct != "":
		q, err := cq.Parse(conjunct)
		if err != nil {
			return nil, err
		}
		expr, err := q.Translate()
		if err != nil {
			return nil, err
		}
		return core.FromAST(expr), nil
	case query == "":
		return nil, fmt.Errorf("missing query: use -q or -cq")
	case xpath:
		return core.PrepareXPath(query)
	default:
		return core.Prepare(query)
	}
}

func writeEvent(w *bufio.Writer, ev xmlstream.Event) {
	switch ev.Kind {
	case xmlstream.StartElement:
		w.WriteString("<" + ev.Name + ">")
	case xmlstream.EndElement:
		w.WriteString("</" + ev.Name + ">")
	case xmlstream.Text:
		w.WriteString(xmlstream.EscapeText(ev.Data))
	}
}
