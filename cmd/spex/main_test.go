package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const paperDoc = `<a><a><c/></a><b/><c/></a>`

func runCLI(t *testing.T, args []string, stdin string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestCLISerialize(t *testing.T) {
	out, _, err := runCLI(t, []string{"-q", "_*.a[b].c"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "<c></c>\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCLICount(t *testing.T) {
	out, _, err := runCLI(t, []string{"-q", "_*.c", "-count"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "2" {
		t.Fatalf("got %q", out)
	}
}

func TestCLINodes(t *testing.T) {
	out, _, err := runCLI(t, []string{"-q", "_*.c", "-nodes"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "3\tc\n5\tc\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCLIXPath(t *testing.T) {
	out, _, err := runCLI(t, []string{"-xpath", "-q", "//a[b]/c", "-count"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "1" {
		t.Fatalf("got %q", out)
	}
}

func TestCLIConjunctive(t *testing.T) {
	out, _, err := runCLI(t, []string{"-cq", "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3", "-nodes"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "5\tc\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCLIStats(t *testing.T) {
	_, errOut, err := runCLI(t, []string{"-q", "a", "-count", "-stats"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "elements=5") || !strings.Contains(errOut, "matches=1") {
		t.Fatalf("stats output: %q", errOut)
	}
	// The per-transducer table lists every node of the a-query's network.
	for _, want := range []string{"transducer", "0:CH(a)", "1:OU"} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("stats output missing %q:\n%s", want, errOut)
		}
	}
}

// TestCLITraceFigure13 golden-tests the -trace rendering of the §III.10
// walk-through (Fig. 13) for _*.a[b].c over the Fig. 1 document, filtered to
// the qualifier machinery: the variable-creator instantiates v0 (outer <a>,
// step 2) and v1 (inner <a>, step 3); the inner instance is invalidated when
// its scope closes (step 6); <b> witnesses v0 through the
// variable-determinant (step 7); the outer scope closes at step 11.
func TestCLITraceFigure13(t *testing.T) {
	_, errOut, err := runCLI(t, []string{"-q", "_*.a[b].c", "-count", "-trace", "-trace-node", "VC,VD"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	want := `   2  <a>     VC(q)     [v0]
   3  <a>     VC(q)     [v1]
   6  </a>    VC(q)     {v1,close}
   6  </a>    VD        {v1,close}
   7  <b>     VD        {v0,true}
  11  </a>    VC(q)     {v0,close}
  11  </a>    VD        {v0,close}
`
	if errOut != want {
		t.Fatalf("trace output:\n%s\nwant:\n%s", errOut, want)
	}
}

// TestCLITraceFigure4 checks the child-transducer trace of Example III.1:
// for a.c, CH(a) fires only at step 2 and CH(c) only at step 9.
func TestCLITraceFigure4(t *testing.T) {
	_, errOut, err := runCLI(t, []string{"-q", "a.c", "-count", "-trace", "-trace-node", "CH"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	want := `   2  <a>     CH(a)     [true]
   9  <c>     CH(c)     [true]
`
	if errOut != want {
		t.Fatalf("trace output:\n%s\nwant:\n%s", errOut, want)
	}
}

func TestCLITraceBadKind(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-q", "a", "-trace", "-trace-kind", "bogus"}, paperDoc); err == nil {
		t.Error("bad -trace-kind should fail")
	}
}

func TestCLIFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte(paperDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, []string{"-q", "a.b", "-nodes", path}, "")
	if err != nil {
		t.Fatal(err)
	}
	if out != "4\tb\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no query
		{"-q", "a..b"},              // bad rpeq
		{"-xpath", "-q", "//["},     // bad xpath
		{"-cq", "nonsense"},         // bad cq
		{"-q", "a", "x.xml", "y"},   // too many args
		{"-q", "a", "/nonexistent"}, // missing file
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, args, paperDoc); err == nil {
			t.Errorf("args %v unexpectedly succeeded", args)
		}
	}
}

func TestCLIMalformedInput(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-q", "a"}, "<a><b></a></b>"); err == nil {
		t.Error("malformed input should fail")
	}
}

func TestCLIWindowed(t *testing.T) {
	doc := `<feed><msg><sport/></msg><msg><news/></msg><msg><sport/></msg></feed>`
	out, errOut, err := runCLI(t, []string{"-q", "feed.msg[sport]", "-window", "1", "-count", "-stats"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "2" {
		t.Fatalf("count: %q", out)
	}
	if !strings.Contains(errOut, "windows=3") {
		t.Fatalf("stats: %q", errOut)
	}
	out, _, err = runCLI(t, []string{"-q", "feed.msg[sport]", "-window", "2"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "window 0\t") || !strings.Contains(out, "window 1\t") {
		t.Fatalf("windowed output: %q", out)
	}
}

// TestEngineFlag: every -engine selection must reproduce the plain
// evaluator's golden -nodes and -count output, and the flag refuses
// combinations the multi-query engines cannot honour.
func TestEngineFlag(t *testing.T) {
	wantNodes, _, err := runCLI(t, []string{"-q", "_*.c", "-nodes"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, _, err := runCLI(t, []string{"-q", "_*.c", "-count"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"sequential", "shared", "parallel", "parallel:2"} {
		out, _, err := runCLI(t, []string{"-q", "_*.c", "-nodes", "-engine", engine}, paperDoc)
		if err != nil {
			t.Fatalf("-engine %s: %v", engine, err)
		}
		if out != wantNodes {
			t.Errorf("-engine %s -nodes = %q, want %q", engine, out, wantNodes)
		}
		out, _, err = runCLI(t, []string{"-q", "_*.c", "-count", "-engine", engine}, paperDoc)
		if err != nil {
			t.Fatalf("-engine %s -count: %v", engine, err)
		}
		if out != wantCount {
			t.Errorf("-engine %s -count = %q, want %q", engine, out, wantCount)
		}
	}
	// The XPath fragment goes through the same path.
	out, _, err := runCLI(t, []string{"-xpath", "-q", "//a[b]/c", "-count", "-engine", "shared"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1\n" {
		t.Errorf("-xpath -engine shared count = %q, want \"1\\n\"", out)
	}

	for _, bad := range [][]string{
		{"-q", "a", "-engine", "shared"},         // neither -count nor -nodes
		{"-q", "a", "-count", "-engine", "warp"}, // unknown engine
		{"-q", "a", "-count", "-engine", "shared", "-stats"},
		{"-q", "a", "-count", "-engine", "shared", "-window", "2"},
	} {
		if _, _, err := runCLI(t, bad, paperDoc); err == nil {
			t.Errorf("args %v accepted, want error", bad)
		}
	}
}
