package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const paperDoc = `<a><a><c/></a><b/><c/></a>`

func runCLI(t *testing.T, args []string, stdin string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestCLISerialize(t *testing.T) {
	out, _, err := runCLI(t, []string{"-q", "_*.a[b].c"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "<c></c>\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCLICount(t *testing.T) {
	out, _, err := runCLI(t, []string{"-q", "_*.c", "-count"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "2" {
		t.Fatalf("got %q", out)
	}
}

func TestCLINodes(t *testing.T) {
	out, _, err := runCLI(t, []string{"-q", "_*.c", "-nodes"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "3\tc\n5\tc\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCLIXPath(t *testing.T) {
	out, _, err := runCLI(t, []string{"-xpath", "-q", "//a[b]/c", "-count"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "1" {
		t.Fatalf("got %q", out)
	}
}

func TestCLIConjunctive(t *testing.T) {
	out, _, err := runCLI(t, []string{"-cq", "q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3", "-nodes"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "5\tc\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCLIStats(t *testing.T) {
	_, errOut, err := runCLI(t, []string{"-q", "a", "-count", "-stats"}, paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "elements=5") || !strings.Contains(errOut, "matches=1") {
		t.Fatalf("stats output: %q", errOut)
	}
}

func TestCLIFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte(paperDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, []string{"-q", "a.b", "-nodes", path}, "")
	if err != nil {
		t.Fatal(err)
	}
	if out != "4\tb\n" {
		t.Fatalf("got %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no query
		{"-q", "a..b"},              // bad rpeq
		{"-xpath", "-q", "//["},     // bad xpath
		{"-cq", "nonsense"},         // bad cq
		{"-q", "a", "x.xml", "y"},   // too many args
		{"-q", "a", "/nonexistent"}, // missing file
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, args, paperDoc); err == nil {
			t.Errorf("args %v unexpectedly succeeded", args)
		}
	}
}

func TestCLIMalformedInput(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-q", "a"}, "<a><b></a></b>"); err == nil {
		t.Error("malformed input should fail")
	}
}

func TestCLIWindowed(t *testing.T) {
	doc := `<feed><msg><sport/></msg><msg><news/></msg><msg><sport/></msg></feed>`
	out, errOut, err := runCLI(t, []string{"-q", "feed.msg[sport]", "-window", "1", "-count", "-stats"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "2" {
		t.Fatalf("count: %q", out)
	}
	if !strings.Contains(errOut, "windows=3") {
		t.Fatalf("stats: %q", errOut)
	}
	out, _, err = runCLI(t, []string{"-q", "feed.msg[sport]", "-window", "2"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "window 0\t") || !strings.Contains(out, "window 1\t") {
		t.Fatalf("windowed output: %q", out)
	}
}
