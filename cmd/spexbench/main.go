// Command spexbench regenerates the tables behind the paper's Figures 14
// and 15 (§VI) and the constant-memory observation.
//
// Usage:
//
//	spexbench                 # both figures at the default scales
//	spexbench -fig 14         # Figure 14 only (MONDIAL + WordNet, 3 engines)
//	spexbench -fig 15         # Figure 15 only (DMOZ, SPEX; baselines refuse)
//	spexbench -fig mem        # the §VI memory table
//	spexbench -scale 1        # paper-sized documents (DMOZ takes a while)
//
// Absolute numbers will not match the paper's 2002 hardware; the shape —
// which engine wins where, and that the in-memory engines cannot process
// the DMOZ documents under the memory budget while SPEX streams them — is
// the reproduction target. See EXPERIMENTS.md.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spexbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spexbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "all", "which experiment: 14, 15, mem, all")
		scale    = fs.Float64("scale", 0, "document scale; 0 = defaults (1 for Fig. 14, 0.05 for Fig. 15)")
		verbose  = fs.Bool("v", false, "stream per-measurement progress")
		fullDMOZ = fs.Bool("full-dmoz", false, "run Fig. 15 at the paper's full scale (slow; equivalent to -scale 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var progress io.Writer
	if *verbose {
		progress = stderr
	}

	runFig14 := *fig == "14" || *fig == "all"
	runFig15 := *fig == "15" || *fig == "all"
	runMem := *fig == "mem" || *fig == "all"

	if runFig14 {
		s := *scale
		if s == 0 {
			s = 1
		}
		if err := figure14(stdout, progress, s); err != nil {
			return err
		}
	}
	if runFig15 {
		s := *scale
		if s == 0 {
			s = 0.05
		}
		if *fullDMOZ {
			s = 1
		}
		if err := figure15(stdout, progress, s); err != nil {
			return err
		}
	}
	if runMem {
		s := *scale
		if s == 0 {
			s = 0.2
		}
		if err := memoryTable(stdout, s); err != nil {
			return err
		}
	}
	return nil
}

// figure14 runs the MONDIAL and WordNet workloads with all three engines.
func figure14(out, progress io.Writer, scale float64) error {
	for _, part := range []struct {
		name      string
		workloads []bench.Workload
	}{
		{"mondial", bench.Fig14Mondial},
		{"wordnet", bench.Fig14WordNet},
	} {
		doc := bench.Dataset(part.name, scale)
		data := doc.Bytes()
		info := mustInfo(data)
		ms, err := bench.RunFigure(part.workloads, data, bench.Engines, progress)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("\nFigure 14 — %s (scale %g: %.1f MB, %d elements, depth %d)",
			part.name, scale, float64(len(data))/(1<<20), info.Elements, info.MaxDepth)
		bench.WriteTable(out, title, ms)
	}
	return nil
}

// figure15 runs the DMOZ workloads: SPEX streams; the in-memory engines are
// subjected to the 512 MB budget check against the PAPER-scale element
// count, so at any scale the table reports the paper's OOM outcome.
func figure15(out, progress io.Writer, scale float64) error {
	paperElements := map[string]int64{
		"dmoz-structure": 3_940_716,
		"dmoz-content":   13_233_278,
	}
	for _, name := range []string{"dmoz-structure", "dmoz-content"} {
		doc := bench.Dataset(name, scale)
		data := doc.Bytes()
		info := mustInfo(data)
		ms, err := bench.RunFigure(bench.Fig15DMOZ, data, bench.StreamingEngines, progress)
		if err != nil {
			return err
		}
		// The baselines face the paper-sized document in the budget check.
		for _, w := range bench.Fig15DMOZ {
			for _, e := range []bench.Engine{bench.EngineTreeWalk, bench.EngineAutomaton} {
				m, err := bench.RunBaseline(e, w, nil, paperElements[name])
				if err != nil {
					return err
				}
				ms = append(ms, m)
			}
		}
		title := fmt.Sprintf("\nFigure 15 — %s (scale %g: %.1f MB, %d elements; paper size %d elements)",
			name, scale, float64(len(data))/(1<<20), info.Elements, paperElements[name])
		bench.WriteTable(out, title, ms)
	}
	return nil
}

// memoryTable reproduces the §VI memory observation: SPEX live memory stays
// flat across documents and queries while the DOM grows with the input.
func memoryTable(out io.Writer, scale float64) error {
	fmt.Fprintf(out, "\nMemory (§VI): live heap after evaluation, scale %g\n", scale)
	fmt.Fprintf(out, "%-16s %-32s %12s %14s\n", "dataset", "query", "spex [MB]", "treewalk [MB]")
	cases := []struct {
		dataset string
		query   string
	}{
		{"mondial", "_*.province.city"},
		{"wordnet", "_*.Noun.wordForm"},
		{"dmoz-structure", "_*.Topic.Title"},
	}
	for _, c := range cases {
		data := bench.Dataset(c.dataset, scale).Bytes()
		w := bench.Workload{Dataset: c.dataset, Class: 1, Query: c.query}
		spexM, err := bench.RunSPEX(w, data)
		if err != nil {
			return err
		}
		twM, err := bench.RunBaseline(bench.EngineTreeWalk, w, data, spexM.Elements)
		if err != nil {
			return err
		}
		tw := fmt.Sprintf("%14.1f", float64(twM.LiveBytes)/(1<<20))
		if twM.Skipped != "" {
			tw = "           OOM"
		}
		fmt.Fprintf(out, "%-16s %-32s %12.1f %s\n", c.dataset, c.query,
			float64(spexM.LiveBytes)/(1<<20), tw)
	}
	// Peak process heap while SPEX streams the largest document straight
	// from the generator — no part of the input is ever materialized —
	// the closest analogue of the paper's "between 8.5 and 11 MB
	// (including the Java Virtual Machine)".
	plan, err := core.Prepare("_*.Topic[editor].Title")
	if err != nil {
		return err
	}
	runtime.GC()
	if _, err := plan.Evaluate(bench.Dataset("dmoz-structure", scale).Stream(), core.EvalOptions{Mode: spexnet.ModeCount}); err != nil {
		return err
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	fmt.Fprintf(out, "SPEX heap while streaming dmoz-structure (never materialized): %.1f MB\n",
		float64(after.HeapAlloc)/(1<<20))
	return nil
}

func mustInfo(data []byte) xmlstream.Info {
	info, err := xmlstream.Measure(xmlstream.NewScanner(bytes.NewReader(data)))
	if err != nil {
		panic(err)
	}
	return info
}
