// Command spexbench regenerates the tables behind the paper's Figures 14
// and 15 (§VI) and the constant-memory observation.
//
// Usage:
//
//	spexbench                 # both figures at the default scales
//	spexbench -fig 14         # Figure 14 only (MONDIAL + WordNet, 3 engines)
//	spexbench -fig 15         # Figure 15 only (DMOZ, SPEX; baselines refuse)
//	spexbench -fig mem        # the §VI memory table
//	spexbench -fig sdi        # the multi-query SDI sweep (subs × shards)
//	spexbench -fig sdi-shared # the overlapping-subscription corpus:
//	                          # per-query private networks vs the merged
//	                          # query-set network; -check pins per-query
//	                          # answer counts equal across the two
//	                          # (-overlap tunes the corpus)
//	spexbench -fig adversarial
//	                          # the governor attack corpus: each shape
//	                          # count-validated ungoverned, then re-run
//	                          # under resource caps (DESIGN.md §9)
//	spexbench -fig obs-overhead -max-overhead 10
//	                          # the instrumentation ablation: the same
//	                          # workload with and without a live metrics
//	                          # registry; fails if the instrumented leg
//	                          # loses more than 10% throughput
//	spexbench -fig early-term
//	                          # the early-termination figure: a `limit k`
//	                          # query reads an input-size-independent
//	                          # prefix of growing DMOZ documents; every
//	                          # row is prefix-validated against the
//	                          # unlimited evaluation
//	spexbench -fig value-pred
//	                          # the value-predicate figure: the same
//	                          # selection over the tickets corpus as an
//	                          # attribute predicate (decided at the start
//	                          # message), a structural qualifier and a
//	                          # text test; -check pins the pairs to equal
//	                          # answers and the attribute rows to zero
//	                          # decision latency
//	spexbench -fig ingest
//	                          # the ingest ablation: seed buffered scanner
//	                          # vs zero-copy vs parallel chunk-scan over
//	                          # the DMOZ dumps (events/s and GB/s, no
//	                          # network attached); -check fingerprints all
//	                          # three event streams (must be identical) and
//	                          # requires zero-copy >= 2x seed throughput;
//	                          # -workers N sets the chunk-scan width
//	spexbench -scale 1        # paper-sized documents (DMOZ takes a while)
//	spexbench -check          # exit non-zero if any engine reports zero
//	                          # answers (CI shape check, not a timing one)
//	spexbench -http :6060     # serve live metrics (Prometheus + JSON) and
//	                          # net/http/pprof while the benchmarks run
//	spexbench -json DIR       # also write machine-readable BENCH_*.json
//	spexbench -json NEW -delta OLD
//	                          # compare NEW's BENCH_*.json against OLD's
//	                          # (benchstat-style ns/element table; no runs)
//	spexbench -json NEW -delta OLD -delta-max 10
//	                          # same, as a regression gate: fail if a SPEX
//	                          # DMOZ qualifier workload slowed by >10%
//	                          # (warn-only when OLD is missing)
//
// With -v, long runs print a periodic progress line (events/sec, depth,
// matches, heap) sourced from the same live metrics registry.
//
// Absolute numbers will not match the paper's 2002 hardware; the shape —
// which engine wins where, and that the in-memory engines cannot process
// the DMOZ documents under the memory budget while SPEX streams them — is
// the reproduction target. See EXPERIMENTS.md.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spexbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spexbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "all", "which experiment: 14, 15, mem, sdi, sdi-shared, adversarial, obs-overhead, early-term, value-pred, ingest, all")
		workers  = fs.Int("workers", 0, "ingest: parallel chunk-scan worker count (0 = one per CPU)")
		overlap  = fs.Float64("overlap", bench.SDISharedOverlap, "sdi-shared: probability that a generated subscription derives from an earlier one")
		scale    = fs.Float64("scale", 0, "document scale; 0 = defaults (1 for Fig. 14, 0.05 for Fig. 15)")
		verbose  = fs.Bool("v", false, "stream per-measurement progress and a periodic live-metrics line")
		fullDMOZ = fs.Bool("full-dmoz", false, "run Fig. 15 at the paper's full scale (slow; equivalent to -scale 1)")
		httpAddr = fs.String("http", "", "serve live metrics and pprof on this address while running (e.g. :6060)")
		jsonDir  = fs.String("json", "", "write machine-readable BENCH_*.json reports into this directory")
		check    = fs.Bool("check", false, "fail if any non-skipped measurement reports zero answers")
		deltaDir = fs.String("delta", "", "compare the BENCH_*.json reports in the -json directory against this previous-report directory and print a delta table (no benchmarks are run)")
		deltaMax = fs.Float64("delta-max", 0, "with -delta: fail if a SPEX DMOZ qualifier workload's ns/element regressed by more than this percent (0 = informational only; a missing previous directory never fails)")
		maxOver  = fs.Float64("max-overhead", 0, "obs-overhead gate: fail if the instrumented leg loses more than this percent throughput vs NoObs (0 = report only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deltaDir != "" {
		if *jsonDir == "" {
			return fmt.Errorf("-delta requires -json NEWDIR naming the current reports")
		}
		return bench.CompareReports(stdout, *deltaDir, *jsonDir, *deltaMax)
	}
	var progress io.Writer
	if *verbose {
		progress = stderr
	}

	// Live observability: one metrics registry shared by every SPEX
	// measurement of the session — the HTTP endpoints and the periodic
	// progress line both read it while a measurement streams.
	var observer *bench.Observer
	if *verbose || *httpAddr != "" {
		observer = &bench.Observer{Metrics: obs.NewMetrics(), Progress: progress}
	}
	if *httpAddr != "" {
		shutdown, err := serveMetrics(*httpAddr, observer.Metrics, stderr)
		if err != nil {
			return err
		}
		defer shutdown()
	}

	writeJSON := func(name string, ms []bench.Measurement) error {
		if *jsonDir == "" || len(ms) == 0 {
			return nil
		}
		f, err := os.Create(filepath.Join(*jsonDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return bench.WriteJSON(f, ms)
	}

	runFig14 := *fig == "14" || *fig == "all"
	runFig15 := *fig == "15" || *fig == "all"
	runMem := *fig == "mem" || *fig == "all"
	runSDI := *fig == "sdi" || *fig == "all"
	runSDIShared := *fig == "sdi-shared" || *fig == "all"
	runAdv := *fig == "adversarial" || *fig == "adv" || *fig == "all"
	runObs := *fig == "obs-overhead" || *fig == "obs" || *fig == "all"
	runEarly := *fig == "early-term" || *fig == "early" || *fig == "all"
	runValuePred := *fig == "value-pred" || *fig == "value" || *fig == "all"
	runIngest := *fig == "ingest" || *fig == "all"

	// checkAnswers is the CI shape check: every measurement that actually
	// ran must have found answers on these workloads.
	checkAnswers := func(figure string, ms []bench.Measurement) error {
		if !*check {
			return nil
		}
		for _, m := range ms {
			if m.Skipped == "" && m.Matches == 0 {
				return fmt.Errorf("%s: %s on %s %q reported zero answers", figure, m.Engine, m.Dataset, m.Query)
			}
		}
		return nil
	}

	if runFig14 {
		s := *scale
		if s == 0 {
			s = 1
		}
		ms, err := figure14(stdout, progress, s, observer)
		if err != nil {
			return err
		}
		if err := writeJSON("BENCH_fig14.json", ms); err != nil {
			return err
		}
		if err := checkAnswers("fig14", ms); err != nil {
			return err
		}
	}
	if runFig15 {
		s := *scale
		if s == 0 {
			s = 0.05
		}
		if *fullDMOZ {
			s = 1
		}
		ms, err := figure15(stdout, progress, s, observer)
		if err != nil {
			return err
		}
		if err := writeJSON("BENCH_fig15.json", ms); err != nil {
			return err
		}
		if err := checkAnswers("fig15", ms); err != nil {
			return err
		}
	}
	if runMem {
		s := *scale
		if s == 0 {
			s = 0.2
		}
		if err := memoryTable(stdout, s); err != nil {
			return err
		}
	}
	if runSDI {
		s := *scale
		if s == 0 {
			s = 0.02
		}
		ms, err := figureSDI(stdout, progress, s, observer)
		if err != nil {
			return err
		}
		if *jsonDir != "" && len(ms) > 0 {
			f, err := os.Create(filepath.Join(*jsonDir, "BENCH_sdi.json"))
			if err != nil {
				return err
			}
			err = bench.WriteSDIJSON(f, ms)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
		if *check {
			for _, m := range ms {
				if m.Matches == 0 {
					return fmt.Errorf("sdi: %s with %d subs, %d shards reported zero answers", m.Mode, m.Subs, m.Shards)
				}
			}
		}
	}
	if runSDIShared {
		s := *scale
		if s == 0 {
			s = 0.02
		}
		ms, err := figureSDIShared(stdout, progress, s, *overlap, observer)
		if err != nil {
			return err
		}
		if *jsonDir != "" && len(ms) > 0 {
			f, err := os.Create(filepath.Join(*jsonDir, "BENCH_sdi_shared.json"))
			if err != nil {
				return err
			}
			err = bench.WriteSDISharedJSON(f, ms)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
		if *check {
			if err := bench.CheckSDIShared(ms); err != nil {
				return err
			}
		}
	}
	if runAdv {
		// The golden corpus at scale 1 is deliberately hostile (the
		// qualifier bomb alone runs for minutes); default to a tenth, the
		// same opt-in pattern as Fig. 15's -full-dmoz.
		s := *scale
		if s == 0 {
			s = 0.1
		}
		ms, err := figureAdversarial(stdout, progress, s, observer)
		if err != nil {
			return err
		}
		if err := writeJSON("BENCH_adversarial.json", ms); err != nil {
			return err
		}
		// The sweep is self-checking (RunAdversarial pins every ungoverned
		// match count); checkAnswers adds the shared zero-answer shape gate.
		if err := checkAnswers("adversarial", ms); err != nil {
			return err
		}
	}
	if runObs {
		s := *scale
		if s == 0 {
			s = 0.05
		}
		if err := figureObsOverhead(stdout, progress, s, *jsonDir, *maxOver, *check); err != nil {
			return err
		}
	}
	if runEarly {
		s := *scale
		if s == 0 {
			s = 0.02
		}
		if err := figureEarlyTerm(stdout, progress, s, *jsonDir, *check); err != nil {
			return err
		}
	}
	if runValuePred {
		s := *scale
		if s == 0 {
			s = 1
		}
		if err := figureValuePred(stdout, progress, s, *jsonDir, *check); err != nil {
			return err
		}
	}
	if runIngest {
		s := *scale
		if s == 0 {
			s = 0.05
		}
		if err := figureIngest(stdout, progress, s, *jsonDir, *workers, *check); err != nil {
			return err
		}
	}
	return nil
}

// figureIngest runs the ingest ablation (EXPERIMENTS.md E22): the seed
// buffered scanner, the zero-copy scanner, and the parallel chunk-scan
// drain the DMOZ dumps with no network attached. With -check every mode's
// full event stream is fingerprinted and must match the seed scanner's
// exactly, and the zero-copy scanner must clear 2× the seed throughput.
func figureIngest(out, progress io.Writer, scale float64, jsonDir string, workers int, check bool) error {
	ms, err := bench.RunIngest(scale, workers, check, progress)
	if err != nil {
		return err
	}
	bench.WriteIngestTable(out, ms)
	if jsonDir != "" {
		f, err := os.Create(filepath.Join(jsonDir, "BENCH_ingest.json"))
		if err != nil {
			return err
		}
		err = bench.WriteJSON(f, bench.IngestMeasurements(ms))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if check {
		return bench.CheckIngest(ms)
	}
	return nil
}

// figureValuePred runs the value-predicate figure (EXPERIMENTS.md E20): the
// same selection over the tickets corpus as an attribute predicate, a
// structural qualifier and a text test. With -check the pairs must agree on
// the answer set and the attribute rows must decide at the start message.
func figureValuePred(out, progress io.Writer, scale float64, jsonDir string, check bool) error {
	ms, err := bench.RunValuePred(scale, progress)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("\nValue predicates — tickets at scale %g: attribute vs structural vs text phrasing", scale)
	bench.WriteValuePredTable(out, title, ms)
	if jsonDir != "" {
		f, err := os.Create(filepath.Join(jsonDir, "BENCH_value_pred.json"))
		if err != nil {
			return err
		}
		err = bench.WriteValuePredJSON(f, ms)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if check {
		return bench.CheckValuePred(ms)
	}
	return nil
}

// figureEarlyTerm runs the early-termination figure (EXPERIMENTS.md E19):
// `limit k` queries on growing DMOZ documents, each prefix-validated against
// its unlimited twin inside the harness. The runs are self-checking; -check
// additionally requires the limited passes to have found answers and
// actually terminated early.
func figureEarlyTerm(out, progress io.Writer, scale float64, jsonDir string, check bool) error {
	ms, err := bench.RunEarlyTerm(scale, progress)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("\nEarly termination — dmoz-structure at scale %g × {1,2,4}, limited vs unlimited", scale)
	bench.WriteEarlyTermTable(out, title, ms)
	if jsonDir != "" {
		f, err := os.Create(filepath.Join(jsonDir, "BENCH_early_term.json"))
		if err != nil {
			return err
		}
		err = bench.WriteEarlyTermJSON(f, ms)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if check {
		for _, m := range ms {
			if m.Matches == 0 {
				return fmt.Errorf("early-term: %s limit %d at scale %g reported zero answers", m.Query, m.Limit, m.Scale)
			}
			if m.TotalMatches > m.Limit && (!m.Determined || m.ConsumedElements >= m.TotalElements) {
				return fmt.Errorf("early-term: %s limit %d at scale %g did not terminate early (consumed %d of %d elements, determined=%v)",
					m.Query, m.Limit, m.Scale, m.ConsumedElements, m.TotalElements, m.Determined)
			}
		}
	}
	return nil
}

// figureObsOverhead runs the instrumentation ablation (EXPERIMENTS.md E18)
// and, when maxOver > 0, gates on the measured throughput loss.
func figureObsOverhead(out, progress io.Writer, scale float64, jsonDir string, maxOver float64, check bool) error {
	const iters = 5
	r, err := bench.RunObsOverhead(scale, iters, progress)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("\nObs overhead — instrumented vs NoObs (scale %g, best of %d)", scale, iters)
	bench.WriteObsOverheadTable(out, title, r)
	if jsonDir != "" {
		f, err := os.Create(filepath.Join(jsonDir, "BENCH_obs_overhead.json"))
		if err != nil {
			return err
		}
		err = bench.WriteObsOverheadJSON(f, r)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if check {
		if r.Matches == 0 {
			return fmt.Errorf("obs-overhead: zero answers on %s %q", r.Dataset, r.Query)
		}
		if r.DecisionLatencyCount == 0 || r.CandidateLifetimeCount == 0 {
			return fmt.Errorf("obs-overhead: lifecycle histograms empty (decisions=%d, lifetimes=%d)",
				r.DecisionLatencyCount, r.CandidateLifetimeCount)
		}
	}
	if maxOver > 0 && r.OverheadPct > maxOver {
		return fmt.Errorf("obs-overhead: instrumented leg lost %.1f%% throughput, budget is %.1f%% (noobs %.0f events/s, instrumented %.0f)",
			r.OverheadPct, maxOver, r.NoObsEventsPerSec, r.InstrumentedEventsPerSec)
	}
	return nil
}

// figureAdversarial runs the adversarial-corpus sweep: every governor
// attack shape ungoverned (count-validated) and under the bench cap set.
func figureAdversarial(out, progress io.Writer, scale float64, o *bench.Observer) ([]bench.Measurement, error) {
	ms, err := bench.RunAdversarial(scale, progress, o)
	if err != nil {
		return ms, err
	}
	caps := bench.AdversarialLimits()
	title := fmt.Sprintf("\nAdversarial corpus (scale %g) — governed leg caps: candidates ≤ %d, depth ≤ %d",
		scale, caps.MaxCandidates, caps.MaxDepth)
	bench.WriteAdversarialTable(out, title, ms)
	return ms, nil
}

// figureSDIShared runs the shared-corpus sweep (EXPERIMENTS.md E21): an
// overlapping subscription corpus evaluated on per-query private networks,
// then on the query-set compiler's merged network, per-query counts
// cross-checked.
func figureSDIShared(out, progress io.Writer, scale, overlap float64, o *bench.Observer) ([]bench.SDISharedMeasurement, error) {
	ms, err := bench.RunSDISharedSweep(scale, overlap, bench.SDISharedSubCounts, progress, o)
	if err != nil {
		return ms, err
	}
	title := fmt.Sprintf("\nSDI shared corpus — dmoz-structure (scale %g), overlap %g: private networks vs merged set", scale, overlap)
	bench.WriteSDISharedTable(out, title, ms)
	return ms, nil
}

// figureSDI runs the multi-query SDI sweep: subscription count × shard
// count on the DMOZ-shaped structure document, sequential shared-network
// baseline included.
func figureSDI(out, progress io.Writer, scale float64, o *bench.Observer) ([]bench.SDIMeasurement, error) {
	ms, err := bench.RunSDISweep(scale, bench.SDISubCounts, bench.SDIShardCounts(), progress, o)
	if err != nil {
		return ms, err
	}
	title := fmt.Sprintf("\nSDI — dmoz-structure (scale %g), %d worker cores available", scale, runtime.GOMAXPROCS(0))
	bench.WriteSDITable(out, title, ms)
	return ms, nil
}

// serveMetrics starts the observability endpoint: /metrics (Prometheus
// text), /vars (JSON snapshot) and /debug/pprof. It returns a shutdown
// function that drains in-flight scrapes before closing the listener.
func serveMetrics(addr string, m *obs.Metrics, stderr io.Writer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := newMetricsServer(obs.NewServeMux(m))
	fmt.Fprintf(stderr, "spexbench: serving metrics on http://%s/metrics (JSON on /vars, profiles under /debug/pprof/)\n", ln.Addr())
	go func() { _ = srv.Serve(ln) }()
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				_ = srv.Close()
			}
		})
	}
	// An interrupted run still drains the endpoint instead of abandoning
	// the listener: shut down gracefully, then re-raise the signal so the
	// process exits with its default disposition.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(stderr, "spexbench: %v received, closing metrics endpoint\n", s)
		shutdown()
		signal.Stop(sigc)
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			_ = p.Signal(s)
		}
	}()
	return shutdown, nil
}

// newMetricsServer builds the sidecar http.Server with the slow-client
// protections a long benchmark run needs: a header-read bound so a stuck
// dialer cannot pin a connection goroutine, and an idle timeout so
// abandoned keep-alive scrapes are reclaimed.
func newMetricsServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// figure14 runs the MONDIAL and WordNet workloads with all three engines.
func figure14(out, progress io.Writer, scale float64, o *bench.Observer) ([]bench.Measurement, error) {
	var all []bench.Measurement
	for _, part := range []struct {
		name      string
		workloads []bench.Workload
	}{
		{"mondial", bench.Fig14Mondial},
		{"wordnet", bench.Fig14WordNet},
	} {
		doc := bench.Dataset(part.name, scale)
		data := doc.Bytes()
		info := mustInfo(data)
		ms, err := bench.RunFigure(part.workloads, data, bench.Engines, progress, o)
		if err != nil {
			return all, err
		}
		title := fmt.Sprintf("\nFigure 14 — %s (scale %g: %.1f MB, %d elements, depth %d)",
			part.name, scale, float64(len(data))/(1<<20), info.Elements, info.MaxDepth)
		bench.WriteTable(out, title, ms)
		all = append(all, ms...)
	}
	return all, nil
}

// figure15 runs the DMOZ workloads: SPEX streams; the in-memory engines are
// subjected to the 512 MB budget check against the PAPER-scale element
// count, so at any scale the table reports the paper's OOM outcome.
func figure15(out, progress io.Writer, scale float64, o *bench.Observer) ([]bench.Measurement, error) {
	var all []bench.Measurement
	paperElements := map[string]int64{
		"dmoz-structure": 3_940_716,
		"dmoz-content":   13_233_278,
	}
	for _, name := range []string{"dmoz-structure", "dmoz-content"} {
		doc := bench.Dataset(name, scale)
		data := doc.Bytes()
		info := mustInfo(data)
		ms, err := bench.RunFigure(bench.Fig15DMOZ, data, bench.StreamingEngines, progress, o)
		if err != nil {
			return all, err
		}
		// The baselines face the paper-sized document in the budget check.
		for _, w := range bench.Fig15DMOZ {
			for _, e := range []bench.Engine{bench.EngineTreeWalk, bench.EngineAutomaton} {
				m, err := bench.RunBaseline(e, w, nil, paperElements[name])
				if err != nil {
					return all, err
				}
				ms = append(ms, m)
			}
		}
		// The shared workloads say "dmoz"; reports must distinguish the
		// structure and content dumps.
		for i := range ms {
			ms[i].Dataset = name
		}
		title := fmt.Sprintf("\nFigure 15 — %s (scale %g: %.1f MB, %d elements; paper size %d elements)",
			name, scale, float64(len(data))/(1<<20), info.Elements, paperElements[name])
		bench.WriteTable(out, title, ms)
		all = append(all, ms...)
	}
	return all, nil
}

// memoryTable reproduces the §VI memory observation: SPEX live memory stays
// flat across documents and queries while the DOM grows with the input.
func memoryTable(out io.Writer, scale float64) error {
	fmt.Fprintf(out, "\nMemory (§VI): live heap after evaluation, scale %g\n", scale)
	fmt.Fprintf(out, "%-16s %-32s %12s %14s\n", "dataset", "query", "spex [MB]", "treewalk [MB]")
	cases := []struct {
		dataset string
		query   string
	}{
		{"mondial", "_*.province.city"},
		{"wordnet", "_*.Noun.wordForm"},
		{"dmoz-structure", "_*.Topic.Title"},
	}
	for _, c := range cases {
		data := bench.Dataset(c.dataset, scale).Bytes()
		w := bench.Workload{Dataset: c.dataset, Class: 1, Query: c.query}
		spexM, err := bench.RunSPEX(w, data)
		if err != nil {
			return err
		}
		twM, err := bench.RunBaseline(bench.EngineTreeWalk, w, data, spexM.Elements)
		if err != nil {
			return err
		}
		tw := fmt.Sprintf("%14.1f", float64(twM.LiveBytes)/(1<<20))
		if twM.Skipped != "" {
			tw = "           OOM"
		}
		fmt.Fprintf(out, "%-16s %-32s %12.1f %s\n", c.dataset, c.query,
			float64(spexM.LiveBytes)/(1<<20), tw)
	}
	// Peak process heap while SPEX streams the largest document straight
	// from the generator — no part of the input is ever materialized —
	// the closest analogue of the paper's "between 8.5 and 11 MB
	// (including the Java Virtual Machine)".
	plan, err := core.Prepare("_*.Topic[editor].Title")
	if err != nil {
		return err
	}
	runtime.GC()
	if _, err := plan.Evaluate(bench.Dataset("dmoz-structure", scale).Stream(), core.EvalOptions{Mode: spexnet.ModeCount}); err != nil {
		return err
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	fmt.Fprintf(out, "SPEX heap while streaming dmoz-structure (never materialized): %.1f MB\n",
		float64(after.HeapAlloc)/(1<<20))
	return nil
}

func mustInfo(data []byte) xmlstream.Info {
	info, err := xmlstream.Measure(xmlstream.NewScanner(bytes.NewReader(data)))
	if err != nil {
		panic(err)
	}
	return info
}
