package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFigureTablesSmoke runs the harness at a tiny scale and checks the
// tables have the right shape (full-scale runs are exercised manually; see
// EXPERIMENTS.md).
func TestFigureTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "14", "-scale", "0.02"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Figure 14 — mondial", "Figure 14 — wordnet", "spex [ms]", "treewalk [ms]", "_*.province.city"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-fig", "15", "-scale", "0.002"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	for _, want := range []string{"Figure 15 — dmoz-structure", "OOM", "xscan"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-fig", "mem", "-scale", "0.01"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "never materialized") {
		t.Errorf("memory table: %q", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
