package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestFigureTablesSmoke runs the harness at a tiny scale and checks the
// tables have the right shape (full-scale runs are exercised manually; see
// EXPERIMENTS.md).
func TestFigureTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "14", "-scale", "0.02"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Figure 14 — mondial", "Figure 14 — wordnet", "spex [ms]", "treewalk [ms]", "_*.province.city"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-fig", "15", "-scale", "0.002"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	for _, want := range []string{"Figure 15 — dmoz-structure", "OOM", "xscan"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-fig", "mem", "-scale", "0.01"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "never materialized") {
		t.Errorf("memory table: %q", out.String())
	}
}

// TestSDIFigureSmoke runs the SDI sweep at a tiny scale with the shape
// check on and validates the table and the JSON report.
func TestSDIFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "sdi", "-scale", "0.001", "-check", "-json", dir}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SDI — dmoz-structure", "shared", "parallel", "speedup"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_sdi.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ms []map[string]any
	if err := json.Unmarshal(data, &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("empty report")
	}
	for _, field := range []string{"dataset", "subs", "mode", "shards", "matches", "elements_per_sec"} {
		if _, ok := ms[0][field]; !ok {
			t.Errorf("missing field %q in %v", field, ms[0])
		}
	}
}

// TestJSONReport runs a tiny Figure-14 session with -json and validates the
// machine-readable report.
func TestJSONReport(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-fig", "14", "-scale", "0.01", "-json", dir}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_fig14.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ms []map[string]any
	if err := json.Unmarshal(data, &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("empty report")
	}
	for _, field := range []string{"engine", "dataset", "query", "elapsed_ns", "live_bytes"} {
		if _, ok := ms[0][field]; !ok {
			t.Errorf("missing field %q in %v", field, ms[0])
		}
	}
}

// TestServeMetrics checks the -http endpoint wiring: Prometheus text on
// /metrics, the JSON snapshot on /vars, and pprof.
func TestServeMetrics(t *testing.T) {
	m := obs.NewMetrics()
	m.Events.Add(9)
	var logBuf bytes.Buffer
	shutdown, err := serveMetrics("127.0.0.1:0", m, &logBuf)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	// The log line carries the bound address.
	line := logBuf.String()
	start := strings.Index(line, "http://")
	end := strings.Index(line, "/metrics")
	if start < 0 || end < 0 {
		t.Fatalf("log line: %q", line)
	}
	base := line[start:end]
	for path, want := range map[string]string{
		"/metrics":             "spex_events_total 9",
		"/vars":                `"events": 9`,
		"/debug/pprof/cmdline": "",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body), want) {
			t.Errorf("%s: missing %q in %q", path, want, body)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag should fail")
	}
}

// TestMetricsServerHardening: the sidecar server must bound header reads
// and idle connections so a stuck scraper cannot pin it, and its shutdown
// function must stop the listener.
func TestMetricsServerHardening(t *testing.T) {
	srv := newMetricsServer(obs.NewServeMux(obs.NewMetrics()))
	if srv.ReadHeaderTimeout <= 0 {
		t.Errorf("ReadHeaderTimeout not set")
	}
	if srv.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout not set")
	}

	var errBuf bytes.Buffer
	shutdown, err := serveMetrics("127.0.0.1:0", obs.NewMetrics(), &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	line := errBuf.String()
	base := line[strings.Index(line, "http://"):]
	base = strings.TrimSpace(base[:strings.Index(base, "/metrics")])
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("scrape status %d", resp.StatusCode)
	}
	shutdown()
	shutdown() // idempotent
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Errorf("listener still accepting after shutdown")
	}
}
