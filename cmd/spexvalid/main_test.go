package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testDTD = `<!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)>`

func TestValidStream(t *testing.T) {
	dtdPath := writeTemp(t, "t.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath}, strings.NewReader(`<a><b>x</b></a>`), &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "valid") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestInvalidStream(t *testing.T) {
	dtdPath := writeTemp(t, "t.dtd", testDTD)
	var out, errBuf bytes.Buffer
	err := run([]string{"-dtd", dtdPath}, strings.NewReader(`<a><c/></a>`), &out, &errBuf)
	if err == nil {
		t.Fatal("expected a violation")
	}
}

func TestStrictFlag(t *testing.T) {
	dtdPath := writeTemp(t, "t.dtd", `<!ELEMENT a ANY>`)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dtd", dtdPath}, strings.NewReader(`<a><u/></a>`), &out, &errBuf); err != nil {
		t.Fatalf("lenient: %v", err)
	}
	if err := run([]string{"-dtd", dtdPath, "-strict"}, strings.NewReader(`<a><u/></a>`), &out, &errBuf); err == nil {
		t.Fatal("strict must reject undeclared <u>")
	}
}

func TestMissingDTD(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(nil, strings.NewReader(`<a/>`), &out, &errBuf); err == nil {
		t.Fatal("missing -dtd must fail")
	}
	if err := run([]string{"-dtd", "/nonexistent.dtd"}, strings.NewReader(`<a/>`), &out, &errBuf); err == nil {
		t.Fatal("unreadable -dtd must fail")
	}
}
