// Command spexvalid validates an XML stream against a DTD, streaming: one
// pass, memory bounded by the document depth (§VIII, ref. [21]).
//
// Usage:
//
//	spexvalid -dtd library.dtd doc.xml
//	cat doc.xml | spexvalid -dtd library.dtd
//	spexvalid -dtd library.dtd -strict doc.xml
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dtd"
	"repro/internal/xmlstream"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "spexvalid:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spexvalid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dtdPath = fs.String("dtd", "", "path to the DTD file (required)")
		strict  = fs.Bool("strict", false, "reject elements without a declaration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dtdPath == "" {
		return fmt.Errorf("missing -dtd")
	}
	dtdSrc, err := os.ReadFile(*dtdPath)
	if err != nil {
		return err
	}
	d, err := dtd.Parse(string(dtdSrc))
	if err != nil {
		return err
	}
	d.Strict = *strict

	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}

	src := xmlstream.NewScanner(in)
	if err := d.Validate(src); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "valid: %d elements, depth %d\n", src.Events(), src.MaxDepth())
	return nil
}
