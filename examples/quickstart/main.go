// Quickstart: compile a query, evaluate it over an XML document, print the
// answers. This is the paper's complete example (§III.10): the query
// _*.a[b].c over the document of Fig. 1 selects the second <c> only — the
// first one's parent <a> has no <b> child.
package main

import (
	"fmt"
	"log"
	"strings"

	spex "repro"
)

const doc = `<a>
  <a><c>first</c></a>
  <b/>
  <c>second</c>
</a>`

func main() {
	q, err := spex.Compile("_*.a[b].c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)

	stats, err := q.Results(strings.NewReader(doc), func(r spex.Result) {
		fmt.Printf("answer #%d <%s>: %s\n", r.Index, r.Name, r.XML)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d events (depth %d) through %d transducers\n",
		stats.Events, stats.MaxDepth, stats.Transducers)

	// The same query in the XPath fragment.
	xq, err := spex.CompileXPath("//a[b]/c")
	if err != nil {
		log.Fatal(err)
	}
	n, err := xq.Count(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XPath //a[b]/c finds %d answer(s)\n", n)
}
