// Selective dissemination of information (SDI), the scenario of the
// paper's introduction: subscribers register path queries; a stream of
// structured messages is filtered in one pass and every subscriber is
// notified of the messages matching its profile — without ever storing the
// stream.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// feed is a newsfeed of messages; in a real deployment this arrives over
// the network, unbounded.
const feed = `<feed>
  <msg><sport/><title>cup final tonight</title></msg>
  <msg><politics/><title>election results</title></msg>
  <msg><sport/><title>transfer rumours</title><exclusive/></msg>
  <msg><weather/><title>rain tomorrow</title></msg>
  <msg><politics/><exclusive/><title>coalition talks</title></msg>
</feed>`

func main() {
	// Subscriber profiles, as rpeq filters over message structure.
	profiles := map[string]string{
		"alice (sport)":      "feed.msg[sport]",
		"bob (politics)":     "feed.msg[politics]",
		"carol (exclusives)": "_*.msg[exclusive]",
		"dave (sport excl.)": "feed.msg[sport][exclusive]",
	}

	var subs []multi.Subscription
	for name, expr := range profiles {
		plan, err := core.Prepare(expr)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		subs = append(subs, multi.Subscription{
			Name: name,
			Plan: plan,
			OnHit: func(sub string, r spexnet.Result) {
				fmt.Printf("deliver message #%d to %s\n", r.Index, sub)
			},
		})
	}

	// All profiles evaluate in ONE pass through ONE shared transducer
	// network (§IX's multi-query optimization): the common feed.msg
	// prefix is compiled and evaluated once for all subscribers.
	set, err := multi.NewSharedSet(subs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d profiles share a network of %d transducers\n\n", len(subs), set.Degree())
	if err := set.Run(xmlstream.NewScanner(strings.NewReader(feed))); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndelivery counts:")
	for name, n := range set.Matches() {
		fmt.Printf("  %-22s %d\n", name, n)
	}

	// At service scale the same subscriptions run on a sharded worker
	// pool: each shard owns one shared network, the feeder broadcasts
	// batched events over bounded channels, and a single sink goroutine
	// delivers the callbacks — per-subscriber order preserved, answers
	// identical to the sequential engines above.
	pool, err := multi.NewParallelSet(subs, multi.ParallelOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel pool: %d shards\n", pool.Shards())
	if err := pool.Run(xmlstream.NewScanner(strings.NewReader(feed))); err != nil {
		log.Fatal(err)
	}
}
