// The paper's MONDIAL experiment end-to-end (§VI, Figure 14 left): generate
// the geographic database stand-in, run the four query classes with SPEX
// and both in-memory baselines, and print times and match counts.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	scale := 1.0
	doc := bench.Dataset("mondial", scale)
	data := doc.Bytes()
	info := doc.Info()
	fmt.Printf("MONDIAL stand-in at scale %g: %.2f MB, %d elements, depth %d\n",
		scale, float64(len(data))/(1<<20), info.Elements, info.MaxDepth)
	fmt.Println("(the paper's original: 1.2 MB, 24,184 elements, depth 5)")
	fmt.Println()

	ms, err := bench.RunFigure(bench.Fig14Mondial, data, bench.Engines, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	bench.WriteTable(os.Stdout, "Figure 14 (left) — MONDIAL, query classes 1-4", ms)

	fmt.Println("\nquery classes: 1 simple structural, 2 qualifier/future condition,")
	fmt.Println("3 nested results, 4 qualifier/past condition")
}
