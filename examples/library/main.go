// A library-catalog pipeline combining the repository's subsystems: the
// incoming stream is first validated against a DTD (streaming, §VIII ref.
// [21]), then queried with backward axes (§II.2 via "XPath: Looking
// Forward") and the following axis (§I), with answers delivered
// progressively fragment by fragment.
package main

import (
	"fmt"
	"log"
	"strings"

	spex "repro"
	"repro/internal/dtd"
)

const catalogDTD = `
<!ELEMENT library (shelf+)>
<!ELEMENT shelf (book+)>
<!ELEMENT book (title, author*, review*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT review (#PCDATA)>
`

const catalog = `<library>
  <shelf>
    <book><title>Streams</title><author>A</author><review>good</review></book>
    <book><title>Trees</title><author>B</author></book>
  </shelf>
  <shelf>
    <book><title>Automata</title><author>C</author><review>fine</review><review>great</review></book>
  </shelf>
</library>`

type printer struct{ current strings.Builder }

func (p *printer) ResultStart(m spex.Match) { p.current.Reset() }
func (p *printer) ResultXML(s string)       { p.current.WriteString(s) }
func (p *printer) ResultEnd(m spex.Match) {
	fmt.Printf("  answer #%d: %s\n", m.Index, p.current.String())
}

func main() {
	// 1. Validate the stream against the catalog DTD.
	d, err := dtd.Parse(catalogDTD)
	if err != nil {
		log.Fatal(err)
	}
	d.Strict = true
	if err := d.ValidateReader(strings.NewReader(catalog)); err != nil {
		log.Fatal("catalog invalid: ", err)
	}
	fmt.Println("catalog validates against the DTD")

	// 2. Backward axis: the books that have reviews, found by navigating
	// from the review back to its parent.
	q, err := spex.CompileXPath("//review/parent::book/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntitles of reviewed books (//review/parent::book/title):")
	if _, err := q.StreamResults(strings.NewReader(catalog), &printer{}); err != nil {
		log.Fatal(err)
	}

	// 3. Following axis: everything shelved after the book titled by the
	// first shelf's last book.
	q2, err := spex.CompileXPath("//book[title]/following::title")
	if err != nil {
		log.Fatal(err)
	}
	var titles []string
	if _, err := q2.Matches(strings.NewReader(catalog), func(m spex.Match) {
		titles = append(titles, fmt.Sprintf("#%d", m.Index))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntitles following some book: %s\n", strings.Join(titles, " "))

	// 4. Early-stop filtering: does any book have two or more reviews?
	// (Structurally: a review with a following review in the same book is
	// not expressible without position; approximate with a book whose
	// review is followed by a review — document-wide here.)
	filter, err := spex.Compile("_*.book[review]")
	if err != nil {
		log.Fatal(err)
	}
	ok, err := filter.MatchesDoc(strings.NewReader(catalog))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncatalog contains a reviewed book: %v\n", ok)
}
