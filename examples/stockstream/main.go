// Unbounded stream processing, the continuous-service scenario of the
// paper's introduction (stock exchange data): an application generates an
// endless stream of quote messages; SPEX evaluates a qualifier query
// against it progressively, in constant memory, delivering answers while
// the stream keeps flowing. The paper reports its prototype "proved stable
// [on infinite streams] in cases where the depth of the tree conveyed in
// the stream is bounded" — this example demonstrates exactly that.
package main

import (
	"fmt"
	"log"
	"runtime"

	spex "repro"
)

func main() {
	// Deliver quotes of interest: ticks that carry an alert flag.
	q, err := spex.Compile("exchange.tick[alert].symbol")
	if err != nil {
		log.Fatal(err)
	}

	delivered := 0
	stream, err := q.Stream(func(m spex.Match) {
		delivered++
		if delivered <= 5 || delivered%25000 == 0 {
			fmt.Printf("alerted tick, answer node #%d\n", m.Index)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// The generator: an unbounded sequence of <tick> messages under one
	// never-ending <exchange> element (bounded depth, unbounded length).
	const ticks = 500_000
	check(stream.StartElement("exchange"))
	state := uint64(1)
	for i := 0; i < ticks; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		check(stream.StartElement("tick"))
		if state%10 == 0 { // one in ten ticks alerts
			check(stream.StartElement("alert"))
			check(stream.EndElement("alert"))
		}
		check(stream.StartElement("symbol"))
		check(stream.Text(fmt.Sprintf("SYM%d", state%97)))
		check(stream.EndElement("symbol"))
		check(stream.StartElement("price"))
		check(stream.Text(fmt.Sprintf("%d.%02d", 10+state%90, state%100)))
		check(stream.EndElement("price"))
		check(stream.EndElement("tick"))

		if i == ticks/2 {
			var ms runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms)
			fmt.Printf("midstream after %d ticks: %d answers delivered, live heap %.1f MB\n",
				i+1, stream.Matches(), float64(ms.HeapAlloc)/(1<<20))
		}
	}
	check(stream.EndElement("exchange"))
	check(stream.Close())

	fmt.Printf("stream ended: %d ticks, %d alerts delivered progressively\n", ticks, stream.Matches())
}
