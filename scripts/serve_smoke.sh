#!/bin/sh
# serve_smoke.sh — end-to-end smoke test for the spexd daemon, driven over
# plain HTTP with curl. It proves the subscribe → ingest → stream-results
# round trip on the paper's Figure 1 document, then checks a SIGTERM drains
# the daemon cleanly.
#
#   scripts/serve_smoke.sh [bin]     bin defaults to ./spexd (built if absent)
#
# Exit status is non-zero on any failed step. Used by `make serve-smoke`
# and the CI serve-smoke job.
set -eu

BIN=${1:-./spexd}
ADDR=${SPEXD_ADDR:-127.0.0.1:8765}
BASE="http://$ADDR"
WORK=$(mktemp -d)
DAEMON_PID=""
CURL_PID=""

cleanup() {
    [ -n "$CURL_PID" ] && kill "$CURL_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$WORK/spexd.log" >&2 || true
    exit 1
}

if [ ! -x "$BIN" ]; then
    echo "serve-smoke: building $BIN"
    go build -o "$BIN" ./cmd/spexd
fi

"$BIN" -addr "$ADDR" -engine shared >"$WORK/stdout" 2>"$WORK/spexd.log" &
DAEMON_PID=$!

# Wait for the daemon to come up.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not become healthy"
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
echo "serve-smoke: daemon healthy on $BASE"

# Subscribe the paper's running query on a channel.
SUB_JSON=$(curl -fsS -X POST "$BASE/v1/subscriptions" \
    -H 'Content-Type: application/json' \
    -d '{"channel":"smoke","query":"_*.a[b].c"}') || fail "subscribe request failed"
SUB_ID=$(printf '%s' "$SUB_JSON" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$SUB_ID" ] && printf '%s' "$SUB_ID" | grep -q '^sub-' \
    || fail "no subscription id in response: $SUB_JSON"
echo "serve-smoke: subscribed as $SUB_ID"

# Attach the NDJSON result stream before ingesting.
curl -fsSN "$BASE/v1/subscriptions/$SUB_ID/results" >"$WORK/frames.ndjson" &
CURL_PID=$!
sleep 0.3

# Ingest the Figure 1 document; _*.a[b].c matches <c>second</c> (index 5).
INGEST=$(curl -fsS -X POST "$BASE/v1/channels/smoke/ingest" \
    -H 'Content-Type: application/xml' \
    --data-binary '<a><a><c>first</c></a><b/><c>second</c></a>') \
    || fail "ingest request failed"
printf '%s' "$INGEST" | grep -q '"matches":1' \
    || fail "ingest summary lacks matches:1 — $INGEST"
echo "serve-smoke: ingest reported $INGEST"

# One NDJSON frame must arrive on the stream, naming node 5 (<c>).
i=0
until grep -q '"index":5' "$WORK/frames.ndjson" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "no result frame arrived: $(cat "$WORK/frames.ndjson" 2>/dev/null)"
    sleep 0.1
done
grep -q '"name":"c"' "$WORK/frames.ndjson" || fail "frame lacks name:c"
FRAMES=$(wc -l <"$WORK/frames.ndjson")
[ "$FRAMES" -eq 1 ] || fail "expected exactly one frame, got $FRAMES"
echo "serve-smoke: received frame $(cat "$WORK/frames.ndjson")"

# The ingest must be visible on the Prometheus endpoint.
curl -fsS "$BASE/metrics" | grep -q '^spex_server_hits_total 1' \
    || fail "/metrics lacks spex_server_hits_total 1"

# Graceful shutdown: SIGTERM drains; the daemon exits zero and the result
# stream ends on its own.
kill -TERM "$DAEMON_PID"
if wait "$DAEMON_PID"; then :; else fail "daemon exited non-zero on SIGTERM"; fi
DAEMON_PID=""
wait "$CURL_PID" 2>/dev/null || true
CURL_PID=""
grep -q 'shut down cleanly' "$WORK/spexd.log" || fail "daemon log lacks clean-shutdown line"

echo "serve-smoke: OK"
