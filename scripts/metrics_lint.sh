#!/bin/sh
# metrics_lint.sh — keep the README's metrics table honest: every exported
# spex_* Prometheus series name that appears as a literal in the exposition
# code (internal/obs and internal/server, tests excluded) must be documented
# in README.md. A metric nobody documented is a metric nobody can use.
#
#   scripts/metrics_lint.sh          run from the repository root
#
# Exit status is non-zero when any exported name is missing from the README,
# listing the offenders. Used by `make metrics-lint` and the CI lint job.
set -eu

README=${README:-README.md}
[ -f "$README" ] || { echo "metrics_lint: $README not found (run from the repo root)" >&2; exit 2; }

# Exported series names: spex_* literals in non-test Go sources of the two
# packages that write Prometheus expositions. Histogram families contribute
# their base name; the _bucket/_sum/_count suffixes are derived and need no
# separate documentation row.
names=$(find internal/obs internal/server -maxdepth 1 -name '*.go' ! -name '*_test.go' \
	-exec grep -ho 'spex_[a-z0-9_]*' {} + | grep -v '_$' | sort -u)

[ -n "$names" ] || { echo "metrics_lint: no spex_* names found — wrong directory?" >&2; exit 2; }

missing=""
for name in $names; do
	grep -q "$name" "$README" || missing="$missing $name"
done

if [ -n "$missing" ]; then
	echo "metrics_lint: exported metric names missing from $README:" >&2
	for name in $missing; do
		echo "  $name" >&2
	done
	exit 1
fi

echo "metrics_lint: $(printf '%s\n' "$names" | wc -l | tr -d ' ') exported spex_* names all documented in $README"
