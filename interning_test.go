package spex

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rpeq"
	"repro/internal/spexnet"
	"repro/internal/xmlstream"
)

// TestCountModeZeroAlloc is the acceptance gate of the symbol pipeline: the
// count-mode inner loop over a warm network, replaying pre-resolved events,
// performs zero allocations per document. CI runs this test in the bench
// smoke job; a regression that re-introduces steady-state allocation fails
// it rather than just shifting a benchmark number.
func TestCountModeZeroAlloc(t *testing.T) {
	var doc bytes.Buffer
	doc.WriteString("<RDF>")
	for i := 0; i < 200; i++ {
		doc.WriteString("<Topic><Title></Title><editor></editor></Topic>")
	}
	doc.WriteString("</RDF>")

	symtab := xmlstream.NewSymtab()
	events, err := xmlstream.Collect(xmlstream.NewScanner(&doc,
		xmlstream.WithText(false), xmlstream.WithSymtab(symtab)))
	if err != nil {
		t.Fatal(err)
	}
	net, err := spexnet.Build(rpeq.MustParse("_*.Topic.Title"), spexnet.Options{
		Mode:   spexnet.ModeCount,
		Symtab: symtab,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := &xmlstream.SliceSource{Events: events}
	feed := func() {
		src.Reset()
		if _, err := net.Run(src); err != nil {
			t.Fatal(err)
		}
	}
	// One warm pass grows the tapes and transducer stacks to their steady
	// size (AllocsPerRun adds its own warm-up run on top).
	feed()
	if allocs := testing.AllocsPerRun(5, feed); allocs != 0 {
		t.Fatalf("count-mode steady state allocates: %.1f allocs per document, want 0", allocs)
	}
	if n := net.Matches(); n == 0 {
		t.Fatal("zero-alloc run found no answers; workload broken")
	}
}

// interningCorpus pairs documents with the queries cross-validated on them.
// The documents probe the interner's edges: the paper's Fig. 1 document,
// a DMOZ-shaped catalog, labels that are prefixes of one another, unicode
// labels, and adjacent empty elements.
var interningCorpus = []struct {
	name    string
	doc     string
	queries []string
}{
	{
		name: "paper-fig1",
		doc:  "<a><a><c></c></a><b></b><c></c></a>",
		queries: []string{
			"a", "_*.c", "a.a.c", "a._", "_*.a[c]", "a[b].c", "a[_*.c]._",
		},
	},
	{
		name: "dmoz-shape",
		doc: "<RDF>" + strings.Repeat(
			"<Topic><catid>1</catid><Title>t</Title><link></link></Topic>"+
				"<ExternalPage><Title>x</Title></ExternalPage>", 7) + "</RDF>",
		queries: []string{
			"_*.Topic.Title", "RDF._", "_*.Title", "RDF.Topic[link].Title", "_*._",
		},
	},
	{
		name: "colliding-prefixes",
		doc:  "<a><aa><ab></ab></aa><ab></ab><a></a></a>",
		queries: []string{
			"a.aa", "_*.ab", "a.a", "a[aa.ab]._", "_*.aa.ab",
		},
	},
	{
		// The rpeq grammar is ASCII, but the document side of the interner
		// must treat multi-byte labels like any other: wildcards traverse
		// them and an ascii sibling distinguishes itself from them.
		name: "unicode-labels",
		doc:  "<r><città>x</città><città></città><x></x><日本><x></x></日本></r>",
		queries: []string{
			"r._", "_*._", "r.x", "_*.x", "r[x]._",
		},
	},
	{
		name: "empty-adjacent",
		doc:  "<r><x></x><x></x><y></y><x></x></r>",
		queries: []string{
			"r.x", "r._", "_*.x", "r[y].x",
		},
	},
}

// TestInterningCrossValidation evaluates every corpus query on the symbol
// pipeline and on the NoInterning ablation (the seed's string-matching
// pipeline) and requires byte-identical serialized answers.
func TestInterningCrossValidation(t *testing.T) {
	for _, tc := range interningCorpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, query := range tc.queries {
				plan, err := core.Prepare(query)
				if err != nil {
					t.Fatalf("%s: %v", query, err)
				}
				run := func(noInterning bool) string {
					var out strings.Builder
					eo := core.EvalOptions{
						Mode:        spexnet.ModeSerialize,
						NoInterning: noInterning,
						Sink: func(res spexnet.Result) {
							fmt.Fprintf(&out, "%d %s %s\n",
								res.Index, res.Name, xmlstream.Serialize(res.Events))
						},
					}
					if _, err := plan.EvaluateReader(strings.NewReader(tc.doc), eo); err != nil {
						t.Fatalf("%s (noInterning=%v): %v", query, noInterning, err)
					}
					return out.String()
				}
				interned, strs := run(false), run(true)
				if interned != strs {
					t.Errorf("%s: answers diverge\ninterned:\n%s\nstrings:\n%s",
						query, interned, strs)
				}
			}
		})
	}
}

// TestSetEnginesAgree runs the same query set on all three Set engines and
// requires identical per-query counts and match lists (the acceptance
// criterion that Sequential, Shared and Parallel return the same answers).
func TestSetEnginesAgree(t *testing.T) {
	doc := "<RDF>" + strings.Repeat(
		"<Topic><catid>7</catid><Title>t</Title></Topic><Alias><Title>a</Title></Alias>", 9) +
		"</RDF>"
	queries := []*Query{
		MustCompile("_*.Topic.Title"),
		MustCompile("RDF._"),
		MustCompile("_*.Title"),
		MustCompile("RDF.Topic[catid].Title"),
	}
	type answers struct {
		counts  []int64
		matches map[int][]Match
	}
	run := func(opts ...SetOption) answers {
		got := answers{matches: make(map[int][]Match)}
		set := NewSet(queries, func(q int, m Match) {
			got.matches[q] = append(got.matches[q], m)
		}, opts...)
		if err := set.Evaluate(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		got.counts = set.Counts()
		return got
	}
	sequential := run(Sequential())
	shared := run(Shared())
	parallel := run(Parallel(2))
	for i := range queries {
		if sequential.counts[i] == 0 {
			t.Errorf("query %d found no answers; workload broken", i)
		}
		if sequential.counts[i] != shared.counts[i] || sequential.counts[i] != parallel.counts[i] {
			t.Errorf("query %d: counts diverge: sequential=%d shared=%d parallel=%d",
				i, sequential.counts[i], shared.counts[i], parallel.counts[i])
		}
		seq := fmt.Sprint(sequential.matches[i])
		if got := fmt.Sprint(shared.matches[i]); got != seq {
			t.Errorf("query %d: shared matches diverge\nsequential: %s\nshared:     %s", i, seq, got)
		}
		if got := fmt.Sprint(parallel.matches[i]); got != seq {
			t.Errorf("query %d: parallel matches diverge\nsequential: %s\nparallel:   %s", i, seq, got)
		}
	}
}

// TestConcurrentStreamsShareSymtab drives several push-mode Streams of one
// compiled Query concurrently, each feeding labels mostly distinct per
// goroutine. All runs intern into the query plan's shared symbol table, so
// under -race this exercises the copy-on-write reader/writer protocol of
// the interner on its intended access pattern.
func TestConcurrentStreamsShareSymtab(t *testing.T) {
	q := MustCompile("_*.x")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var matches int
			s, err := q.Stream(func(Match) { matches++ })
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 500; i++ {
				label := fmt.Sprintf("l%d_%d", g, i)
				if err := s.StartElement(label); err != nil {
					t.Error(err)
					return
				}
				if err := s.StartElement("x"); err != nil {
					t.Error(err)
					return
				}
				if err := s.EndElement("x"); err != nil {
					t.Error(err)
					return
				}
				if err := s.EndElement(label); err != nil {
					t.Error(err)
					return
				}
			}
			if err := s.Close(); err != nil {
				t.Error(err)
				return
			}
			if matches != 500 {
				t.Errorf("goroutine %d: %d matches, want 500", g, matches)
			}
		}(g)
	}
	wg.Wait()
	if n := q.plan.Symtab().Len(); n < 4*500 {
		t.Errorf("symtab holds %d symbols, want at least 2000", n)
	}
}

// TestMatchesDocReleasesRun covers the early-exit bugfix: MatchesDoc stops
// mid-stream on the first answer and must still release the run (Release is
// idempotent, so the non-early path is covered too).
func TestMatchesDocReleasesRun(t *testing.T) {
	q := MustCompile("_*.hit")
	// The answer appears early in a long document; evaluation must stop
	// without consuming the rest (an erroring reader after the answer
	// would fail the test if it were read).
	head := "<r><hit></hit>"
	r := io.MultiReader(strings.NewReader(head), failingReader{})
	ok, err := q.MatchesDoc(r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected a match")
	}
	// No match at all: the run completes and closes normally.
	ok, err = q.MatchesDoc(strings.NewReader("<r><miss></miss></r>"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unexpected match")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) {
	return 0, fmt.Errorf("read past the early-exit point")
}
